"""Vote policies: how a site resolves its own vote nondeterminism.

The model FSAs are nondeterministic — a site reading ``xact`` may move
to its wait state (vote yes) or abort state (vote no).  When the engine
finds several enabled transitions distinguished only by their vote
annotation, it asks the site's vote policy which way to go.  In the
database substrate (:mod:`repro.db`) the "policy" is real: the local
transaction manager votes no when it had to abort for concurrency
control reasons, exactly the paper's motivation for unilateral abort.
"""

from __future__ import annotations

import random
from typing import Mapping, Protocol

from repro.types import SiteId, Vote


class VotePolicy(Protocol):
    """Anything that can decide a site's vote on one transaction."""

    def vote(self, site: SiteId) -> Vote:
        """The vote ``site`` casts when asked."""
        ...  # pragma: no cover - protocol definition


class UnanimousYes:
    """Every site votes yes — the commit fast path."""

    def vote(self, site: SiteId) -> Vote:
        return Vote.YES

    def __repr__(self) -> str:
        return "UnanimousYes()"


class FixedVotes:
    """Explicit per-site votes with a default for unlisted sites.

    Args:
        votes: Mapping from site id to that site's vote.
        default: Vote for sites not in the mapping.
    """

    def __init__(
        self, votes: Mapping[SiteId, Vote], default: Vote = Vote.YES
    ) -> None:
        self._votes = dict(votes)
        self._default = default

    def vote(self, site: SiteId) -> Vote:
        return self._votes.get(site, self._default)

    def __repr__(self) -> str:
        return f"FixedVotes({self._votes!r}, default={self._default})"


class BernoulliVotes:
    """Each site votes no independently with probability ``p_no``.

    Votes are drawn once per site and memoized so repeated queries are
    stable within one run.  Uses its own :class:`random.Random` so runs
    remain reproducible under a fixed seed.
    """

    def __init__(self, p_no: float, seed: int = 0) -> None:
        if not 0.0 <= p_no <= 1.0:
            raise ValueError(f"p_no must be a probability, got {p_no}")
        self.p_no = p_no
        self._rng = random.Random(seed)
        self._drawn: dict[SiteId, Vote] = {}

    def vote(self, site: SiteId) -> Vote:
        if site not in self._drawn:
            roll = self._rng.random()
            self._drawn[site] = Vote.NO if roll < self.p_no else Vote.YES
        return self._drawn[site]

    def __repr__(self) -> str:
        return f"BernoulliVotes(p_no={self.p_no})"
