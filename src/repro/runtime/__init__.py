"""Executable commit protocols on the simulated network.

The runtime *interprets* the same :class:`~repro.fsa.spec.ProtocolSpec`
objects the analysis layer proves things about, so the protocol that is
verified nonblocking is byte-for-byte the protocol that runs:

* :mod:`~repro.runtime.engine` — the FSA interpreter: buffers incoming
  protocol messages, fires enabled transitions, resolves vote
  nondeterminism through a :mod:`~repro.runtime.policies` vote policy,
  and write-ahead-logs votes and decisions to the site's DT log;
* :mod:`~repro.runtime.decision` — the termination decision rule
  derived from concurrency sets (slide 39), generalized with an
  explicit BLOCKED verdict for states where no safe decision exists
  (the situation the fundamental theorem characterizes);
* :mod:`~repro.runtime.termination` — the backup-coordinator
  termination protocol (slides 38–39): election, the decision rule,
  and the two-phase backup broadcast that keeps cascading backup
  failures safe;
* :mod:`~repro.runtime.recovery` — the recovery protocol for crashed
  sites: log inspection, unilateral abort before the vote, and outcome
  queries after it;
* :mod:`~repro.runtime.site` / :mod:`~repro.runtime.harness` — one
  simulated site combining all of the above, and the orchestrator that
  runs a whole transaction with crash injection and collects a
  :class:`~repro.runtime.harness.RunResult`.
"""

from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun, RunResult
from repro.runtime.log import DTLog
from repro.runtime.policies import FixedVotes, UnanimousYes, VotePolicy
from repro.runtime.site import CommitSite

__all__ = [
    "CommitRun",
    "CommitSite",
    "DTLog",
    "FixedVotes",
    "RunResult",
    "TerminationRule",
    "UnanimousYes",
    "VotePolicy",
]
