"""The recovery protocol for crashed sites.

Slide 12: "A recovery protocol is invoked by a crashed site to resume
transaction processing upon recovery."  The recovering site inspects
its crash-surviving DT log:

* **decision logged** — the outcome is known; it is simply re-applied
  (commit/abort are irreversible);
* **no vote logged** — the site failed before its commit point and
  unilaterally aborts (slide 6: "the site will abort the transaction
  immediately upon recovering");
* **yes vote, no decision** — the site is *in doubt* and must ask the
  other sites.  It broadcasts an outcome query and adopts the first
  final answer; undecided peers cause a timed re-query.

A site blocked by a blocking protocol (2PC after a badly timed
coordinator crash) also uses outcome queries: when the failure detector
reports that a crashed peer recovered, the blocked site queries it —
the recovered site's log (or its own unilateral abort) resolves the
blocking, which is exactly why blocking protocols "work" only by
waiting for crashed sites to return.

Total failure is the paper's acknowledged limit: when every site
crashed in doubt, no query can answer and the transaction stays
undecided until an answer exists (resolving it requires identifying
the last site to fail, out of scope of this paper's protocols).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.messages import OutcomeQuery, OutcomeReply
from repro.types import Outcome, SiteId, Vote

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.seam import ProtocolHost

#: Timer key used for periodic re-queries while in doubt.
REQUERY_TIMER = "recovery.requery"


class RecoveryController:
    """Per-site recovery logic.

    Args:
        site: The owning host — any
            :class:`~repro.runtime.seam.ProtocolHost` (simulated site
            or live backend).
        requery_interval: Delay between outcome queries while in doubt,
            in the host clock's units (virtual time in the simulator,
            wall-clock seconds in the live runtime).
    """

    def __init__(
        self,
        site: "ProtocolHost",
        requery_interval: float = 5.0,
        total_failure_recovery: bool = False,
        presumption: str = "none",
    ) -> None:
        self._site = site
        self.requery_interval = requery_interval
        self.total_failure_recovery = total_failure_recovery
        self.presumption = presumption
        self.in_doubt = False
        self.queries_sent = 0
        self._round_replies: dict[SiteId, "OutcomeReply"] = {}
        # Virtual time the recovery phase started, or None when the
        # site is not recovering (observability only).
        self._phase_entered_at = None

    # ------------------------------------------------------------------
    # Phase instrumentation (observability; no protocol effect)
    # ------------------------------------------------------------------

    def _phase_enter(self) -> None:
        self._phase_entered_at = self._site.now()
        self._site.trace(
            "phase.enter",
            "recovery protocol started",
            site=self._site.site,
            phase="recovery",
        )

    def _phase_exit(self, reason: str) -> None:
        if self._phase_entered_at is None:
            return
        elapsed = self._site.now() - self._phase_entered_at
        self._phase_entered_at = None
        self._site.trace(
            "phase.exit",
            f"recovery {reason} after {elapsed:g}",
            site=self._site.site,
            phase="recovery",
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    # Restart entry point
    # ------------------------------------------------------------------

    def on_restart(self) -> None:
        """Run the recovery decision procedure after a restart."""
        self._phase_enter()
        automaton = self._site.spec.automaton(self._site.site)
        if automaton.read_only_states and not (
            automaton.commit_states or automaton.abort_states
        ):
            # A read-only participant has nothing to recover: it holds
            # no locks, made no updates, and logged no records — either
            # global outcome is acceptable to it.
            self._site.trace(
                "recovery.read_only",
                "read-only participant; nothing to recover",
                site=self._site.site,
            )
            self._phase_exit("resolved as read-only")
            return
        log = self._site.log
        decision = log.decision()
        if decision is not None:
            # Outcome already durable; re-apply it to the fresh engine.
            self._site.engine.force_outcome(decision.outcome, via="recovery")
            self._site.trace(
                "recovery.known",
                f"log already holds {decision.outcome.value}",
                site=self._site.site,
            )
            self._phase_exit("resolved from own log")
            return

        vote = log.vote()
        if log.membership() is not None and vote is None:
            # Presumed commit: a membership record without a decision
            # means the transaction was in flight when the coordinator
            # crashed.  The commit presumption only covers transactions
            # with *no* record at all, so an in-flight one must be
            # aborted explicitly.
            self._site.engine.force_outcome(Outcome.ABORT, via="recovery")
            self._site.trace(
                "recovery.presumed",
                "membership record without decision; aborting explicitly",
                site=self._site.site,
            )
            self._phase_exit("resolved by explicit abort of in-flight txn")
            return
        can_unilaterally_abort = any(
            t.vote is Vote.NO
            for t in self._site.spec.automaton(self._site.site).transitions
        )
        if (vote is None and can_unilaterally_abort) or (
            vote is not None and vote.vote is Vote.NO
        ):
            # Crashed before the commit point: unilateral abort.  Only
            # sound for sites that hold a vote — a 1PC slave has no say
            # and must ask instead, which is exactly why the paper calls
            # 1PC inadequate (no unilateral abort, slide 8).
            self._site.engine.force_outcome(Outcome.ABORT, via="recovery")
            self._site.trace(
                "recovery.unilateral_abort",
                "no yes-vote logged; aborting unilaterally",
                site=self._site.site,
            )
            self._phase_exit("resolved by unilateral abort")
            return

        # In doubt: voted yes, outcome unknown.  Ask around.
        self.in_doubt = True
        self._site.trace(
            "recovery.in_doubt",
            "yes vote logged without decision; querying peers",
            site=self._site.site,
        )
        self.send_queries()

    # ------------------------------------------------------------------
    # Outcome queries
    # ------------------------------------------------------------------

    def send_queries(self) -> None:
        """Query every operational peer for the outcome, with re-arm."""
        if not self.in_doubt or not self._site.alive:
            return
        self._round_replies = {}
        peers = [
            s
            for s in self._site.network.operational_sites()
            if s != self._site.site
            and s in self._site.spec.automata
            and s not in self._site.spec.read_only_sites
        ]
        for peer in peers:
            self.queries_sent += 1
            self._site.send_payload(peer, OutcomeQuery())
        self._site.set_timer(REQUERY_TIMER, self.requery_interval, self.send_queries)

    def on_query(self, sender: SiteId, _msg: OutcomeQuery) -> None:
        """Answer a peer's outcome query from our own log."""
        outcome = self._site.log.outcome()
        self._site.send_payload(
            sender,
            OutcomeReply(
                outcome,
                recovered_in_doubt=(
                    not outcome.is_final and self._site.ever_crashed
                ),
            ),
        )

    def on_reply(self, sender: SiteId, msg: OutcomeReply) -> None:
        """Handle an outcome answer while in doubt or blocked."""
        if self._site.engine.finished:
            return
        if not msg.outcome.is_final:
            # Peer does not know either; the re-query timer runs.  When
            # total-failure recovery is enabled, a complete round of
            # recovered-in-doubt answers proves nobody ever decided.
            self._round_replies[sender] = msg
            self._maybe_resolve_total_failure()
            return
        self.in_doubt = False
        self._site.cancel_timer(REQUERY_TIMER)
        self._site.trace(
            "recovery.resolved",
            f"learned {msg.outcome.value} from site {sender}",
            site=self._site.site,
        )
        self._site.engine.force_outcome(msg.outcome, via="recovery")
        self._phase_exit(f"resolved by site {sender}")

    def _maybe_resolve_total_failure(self) -> None:
        """Abort safely once the whole population is provably in doubt.

        Sound because decisions are force-logged before any visible
        effect: if every participant is a recovered in-doubt site (each
        asserts it about itself), then no decision record exists
        anywhere, no site ever acted on a decision, and abort is
        consistent with every possible future — there isn't one that
        commits, since committing requires a site that already decided.
        This is the extension beyond the paper's protocols (its slides
        leave total failure to the recovery literature); disabled by
        default.
        """
        if not self.total_failure_recovery or not self.in_doubt:
            return
        others = [s for s in self._site.spec.sites if s != self._site.site]
        if set(self._round_replies) != set(others):
            return
        if not all(
            reply.recovered_in_doubt for reply in self._round_replies.values()
        ):
            return
        self.in_doubt = False
        self._site.cancel_timer(REQUERY_TIMER)
        self._site.trace(
            "recovery.total_failure",
            "all participants recovered in doubt; aborting safely",
            site=self._site.site,
        )
        self._site.engine.force_outcome(Outcome.ABORT, via="recovery")
        self._phase_exit("resolved by total-failure analysis")

    def on_peer_recovered(self, peer: SiteId) -> None:
        """A crashed peer returned; blocked/in-doubt sites query it.

        This is how 2PC's blocked sites eventually resolve: the
        recovered coordinator answers from its log (or from its own
        unilateral abort on recovery).
        """
        if self._site.engine.finished or not self._site.alive:
            return
        if self._site.termination.blocked or self.in_doubt:
            self.queries_sent += 1
            self._site.send_payload(peer, OutcomeQuery())
