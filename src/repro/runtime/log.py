"""The distributed-transaction (DT) log.

Each site owns a DT log that — like a real write-ahead log — survives
crashes while all other site state is lost.  The engine force-writes a
site's vote before transmitting it and a decision before acting on it,
so the recovery protocol can reconstruct exactly how far the site got:

* no vote record → the site crashed before its commit point and may
  unilaterally abort on recovery (slide 6);
* a yes vote but no decision → the site is in doubt and must ask the
  operational sites (recovery protocol);
* a decision record → the outcome is known; commit/abort are
  irreversible, so it is simply re-applied.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Union

from repro.errors import WALError
from repro.types import Outcome, SimTime, SiteId, Vote


@dataclasses.dataclass(frozen=True)
class VoteRecord:
    """A forced log record of the site's vote."""

    vote: Vote
    at: SimTime


@dataclasses.dataclass(frozen=True)
class DecisionRecord:
    """A forced log record of the final outcome.

    Attributes:
        outcome: COMMIT or ABORT.
        at: Virtual time of the force-write.
        via: How the decision was reached: ``"protocol"`` (normal FSA
            execution), ``"termination"`` (the backup protocol), or
            ``"recovery"`` (learned while recovering).
    """

    outcome: Outcome
    at: SimTime
    via: str


@dataclasses.dataclass(frozen=True)
class MembershipRecord:
    """Presumed commit's forced membership record.

    Force-written by the coordinator before any ``xact`` leaves, it
    pins the set of voting participants: a recovering coordinator that
    finds a membership record but no decision knows the transaction
    was in flight and must abort it *explicitly* (the commit
    presumption only covers transactions it has no record of).

    Attributes:
        members: The voting participants of the transaction.
        at: Virtual time of the force-write.
    """

    members: tuple[SiteId, ...]
    at: SimTime


LogRecord = Union[VoteRecord, DecisionRecord, MembershipRecord]


class DTLog:
    """An append-only crash-surviving log for one site and transaction."""

    def __init__(self) -> None:
        self._records: list[LogRecord] = []

    @property
    def records(self) -> tuple[LogRecord, ...]:
        """All records in append order."""
        return tuple(self._records)

    def write_vote(self, vote: Vote, at: SimTime, forced: bool = True) -> None:
        """Log a vote record (forced by default).

        ``forced=False`` marks a record a commit presumption makes
        redundant (e.g. a no vote under presumed abort): durable
        implementations skip the fsync for it.  The in-memory log
        keeps the record either way.

        Raises:
            WALError: On a second vote or a vote after the decision —
                both impossible in correct executions.
        """
        if self.vote() is not None:
            raise WALError("vote already logged")
        if self.decision() is not None:
            raise WALError("cannot vote after a decision is logged")
        self._records.append(VoteRecord(vote=vote, at=at))

    def write_decision(
        self, outcome: Outcome, at: SimTime, via: str, forced: bool = True
    ) -> None:
        """Log a decision record (forced by default).

        Re-logging the *same* outcome is a harmless no-op (a recovering
        site may re-learn its own decision); logging a conflicting
        outcome raises, since commit and abort are irreversible.
        ``forced=False`` marks a presumption-redundant record (see
        :meth:`write_vote`).

        Raises:
            WALError: If a different outcome was already logged, or the
                outcome is not final.
        """
        if not outcome.is_final:
            raise WALError(f"cannot log non-final outcome {outcome}")
        existing = self.decision()
        if existing is not None:
            if existing.outcome is not outcome:
                raise WALError(
                    f"decision {existing.outcome.value} already logged; "
                    f"refusing conflicting {outcome.value}"
                )
            return
        self._records.append(DecisionRecord(outcome=outcome, at=at, via=via))

    def write_membership(self, members: Iterable[SiteId], at: SimTime) -> None:
        """Force the presumed-commit membership record.

        Raises:
            WALError: On a second membership record, or one after the
                decision (it must precede the ``xact`` fan-out).
        """
        if self.membership() is not None:
            raise WALError("membership already logged")
        if self.decision() is not None:
            raise WALError("cannot log membership after a decision")
        self._records.append(
            MembershipRecord(members=tuple(members), at=at)
        )

    @classmethod
    def replay(cls, records: Iterable[LogRecord]) -> "DTLog":
        """Rebuild a log by re-applying records through the write path.

        Used after a restart: the surviving records (in-memory for the
        simulated site, decoded from disk for the live runtime's
        durable log) are re-applied one by one, so every invariant the
        write path enforces is re-checked on the way in:

        * a second vote, or a vote after the decision, raises
          :class:`~repro.errors.WALError` (corrupt log);
        * a duplicate decision with the *same* outcome is absorbed (the
          no-op re-logging path), a conflicting one raises;
        * a decision without any vote is accepted — that ordering is
          legal (e.g. an outcome forced by termination or recovery onto
          a site that never voted).

        Re-application is idempotent: ``DTLog.replay(log.records)``
        holds exactly ``log.records``.

        Raises:
            WALError: If the record sequence violates a log invariant.
        """
        log = cls()
        for record in records:
            if isinstance(record, VoteRecord):
                log.write_vote(record.vote, record.at)
            elif isinstance(record, DecisionRecord):
                log.write_decision(record.outcome, record.at, via=record.via)
            elif isinstance(record, MembershipRecord):
                log.write_membership(record.members, record.at)
            else:
                raise WALError(f"unknown log record {record!r}")
        return log

    def vote(self) -> Optional[VoteRecord]:
        """The vote record, if one was logged."""
        for record in self._records:
            if isinstance(record, VoteRecord):
                return record
        return None

    def membership(self) -> Optional[MembershipRecord]:
        """The membership record, if one was logged."""
        for record in self._records:
            if isinstance(record, MembershipRecord):
                return record
        return None

    def decision(self) -> Optional[DecisionRecord]:
        """The decision record, if one was logged."""
        for record in self._records:
            if isinstance(record, DecisionRecord):
                return record
        return None

    def outcome(self) -> Outcome:
        """The logged outcome, or UNDECIDED if no decision was logged."""
        decision = self.decision()
        return decision.outcome if decision is not None else Outcome.UNDECIDED

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTLog({self._records!r})"
