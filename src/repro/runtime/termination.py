"""The termination protocol (slides 37–40).

When a site failure impairs the commit protocol, the operational,
undecided sites terminate the transaction among themselves:

1. a **backup coordinator** is elected from the operational sites (any
   distributed election mechanism works — slide 38; the default is the
   deterministic lowest-id rule, which is the stable outcome of the
   bully/ring elections implemented in :mod:`repro.election`);
2. the backup applies the **decision rule** to *its own* local state
   (:class:`~repro.runtime.decision.TerminationRule`): commit if the
   state's concurrency set contains a commit state, abort if it
   contains none, BLOCKED when neither decision is safe (possible only
   for blocking protocols such as 2PC);
3. the backup runs the **two-phase backup protocol** (slide 39): first
   it orders every operational site to adopt its local state and
   collects acknowledgements, then it broadcasts the decision.  Phase 1
   exists so that if the backup itself fails, the next backup's state —
   and therefore its decision — is the same.  It is skipped when the
   backup is already in a commit or abort state.

Cascading failures re-run the election: failure notifications about the
current backup trigger a new round at every remaining operational site.
Round numbers discard stragglers from superseded backups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.runtime.decision import TerminationRule
from repro.runtime.messages import (
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.types import Outcome, SiteId

#: Supported termination variants.
#:
#: ``standard``
#:     The paper's protocol (slides 38–39): the backup applies the
#:     decision rule to its own state and runs the two-phase backup
#:     broadcast (adopt-my-state, then decide).
#: ``cooperative``
#:     An extension: before applying the rule, the backup polls the
#:     operational sites' local states and *adopts* any final outcome it
#:     finds — removing the unnecessary blocking that occurs when the
#:     elected backup is less informed than some peer (e.g. a 2PC slave
#:     that already received the commit).  Falls back to ``standard``
#:     when nobody is final.  Always safe: an adopted outcome is, by
#:     definition, already durable somewhere.
#: ``unsafe-skip-phase1``
#:     A deliberately broken ablation: the backup applies its decision
#:     locally and broadcasts it *without* phase 1.  If the backup dies
#:     mid-broadcast, the next backup may reach the opposite decision —
#:     experiment A1 exhibits the resulting atomicity violation,
#:     demonstrating why slide 39's phase 1 exists.
#: ``quorum``
#:     An extension in the direction of Skeen's quorum-based protocols:
#:     termination proceeds only when the site's operational view holds
#:     a strict majority of all participants; otherwise the site blocks.
#:     Under a (single) partition misread as crashes, at most one side
#:     has a quorum, so the split decision of experiment A2 cannot
#:     happen — the minority blocks instead.  The price is reduced
#:     crash resilience: a lone survivor of real crashes also blocks
#:     (experiment A5 quantifies the tradeoff).  Full quorum 3PC with
#:     repeated partitions needs instance numbering beyond this scope.
TERMINATION_MODES = ("standard", "cooperative", "unsafe-skip-phase1", "quorum")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.seam import ProtocolHost

#: An election strategy maps the operational candidate set to a winner.
ElectionStrategy = Callable[[Iterable[SiteId]], SiteId]


def lowest_id_election(candidates: Iterable[SiteId]) -> SiteId:
    """The default deterministic election: the lowest operational id."""
    return min(candidates)


class TerminationController:
    """Per-site termination logic, driven by failure notifications.

    Args:
        site: The owning host — any
            :class:`~repro.runtime.seam.ProtocolHost` (the simulated
            :class:`~repro.runtime.site.CommitSite` or the live
            backend's per-transaction host).
        rule: Precomputed decision rule for the protocol.
        elect: Election strategy (default: lowest operational id).
    """

    def __init__(
        self,
        site: "ProtocolHost",
        rule: TerminationRule,
        elect: Optional[ElectionStrategy] = None,
        mode: str = "standard",
    ) -> None:
        if mode not in TERMINATION_MODES:
            raise ValueError(
                f"unknown termination mode {mode!r}; "
                f"choose from {TERMINATION_MODES}"
            )
        self._site = site
        self._rule = rule
        self._elect = elect if elect is not None else lowest_id_election
        self.mode = mode
        self.round_no = 0
        self.blocked = False
        self.rounds_started = 0
        self._awaiting_acks: set[SiteId] = set()
        self._awaiting_states: set[SiteId] = set()
        self._state_replies: dict[SiteId, TermStateReply] = {}
        self._phase: str = "idle"  # idle | await_states | await_acks | done
        self._decision: Optional[Outcome] = None
        # Virtual time the termination phase was entered at this site,
        # or None while termination is not in progress (observability).
        self._phase_entered_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Phase instrumentation (observability; no protocol effect)
    # ------------------------------------------------------------------

    def _phase_enter(self) -> None:
        if self._phase_entered_at is not None:
            return  # Cascading rounds extend the same termination phase.
        self._phase_entered_at = self._site.now()
        self._site.trace(
            "phase.enter",
            "termination protocol engaged",
            site=self._site.site,
            phase="termination",
        )

    def _phase_exit(self, reason: str) -> None:
        if self._phase_entered_at is None:
            return
        elapsed = self._site.now() - self._phase_entered_at
        self._phase_entered_at = None
        self._site.trace(
            "phase.exit",
            f"termination {reason} after {elapsed:g}",
            site=self._site.site,
            phase="termination",
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------

    def on_peer_failure(self, failed: SiteId) -> None:
        """A failure notification arrived; restart the round everywhere.

        Every operational site — current backup included, and even
        sites that already decided — restarts the round on *every*
        failure notification.  The reliable detector reports each crash
        to all operational sites, so round counters stay synchronized;
        a backup that instead kept waiting on a stale round would
        deadlock against participants that had already moved on (its
        phase-1 orders would be discarded as stragglers).  Sites that
        already decided participate because peers cannot know who has
        decided: an election may pick a final site as backup, which
        then simply broadcasts its outcome (the slide-39 case where
        phase 1 is omitted).
        """
        self.start_round()

    def start_round(self) -> None:
        """Run one termination round from this site's point of view."""
        operational = self._site.operational_participants()
        if self._site.site not in operational:
            return
        self.round_no += 1
        self.rounds_started += 1
        # Deliberately do NOT clear ``blocked`` here.  A round restart
        # alone is not evidence of progress: with an unsynchronized
        # failure detector (the live runtime) a site can adopt round R
        # from the backup's TermBlocked and only *then* see its own
        # notification of the same failure, restarting into a round no
        # backup will ever run.  A blocked verdict stays standing until
        # superseded by a phase-1 order or a decision — which is what
        # clears it below.
        self._phase_enter()
        if self.mode == "quorum" and not self._site.engine.finished:
            total = len(self._site.spec.sites)
            if 2 * len(operational) <= total:
                self.blocked = True
                self._phase = "done"
                self._site.trace(
                    "term.no_quorum",
                    f"only {len(operational)}/{total} sites reachable; "
                    "blocking rather than risking a split decision",
                    site=self._site.site,
                )
                self._phase_exit("blocked (no quorum)")
                self._site.notify_blocked()
                return
        backup = self._elect(operational)
        self._site.trace(
            "term.round",
            f"round {self.round_no}: backup is site {backup}",
            site=self._site.site,
            backup=backup,
        )
        if backup == self._site.site:
            self._run_backup(operational)
        else:
            self._phase = "participant"

    # ------------------------------------------------------------------
    # Backup side
    # ------------------------------------------------------------------

    def _run_backup(self, operational: list[SiteId]) -> None:
        engine = self._site.engine
        others = [s for s in operational if s != self._site.site]

        if self.mode == "cooperative" and not engine.finished and others:
            # Phase 0: poll peers; adopt any final outcome found.
            self._phase = "await_states"
            self._awaiting_states = set(others)
            self._state_replies = {}
            self._site.trace(
                "term.state_poll",
                f"cooperative backup polling {others}",
                site=self._site.site,
            )
            for other in others:
                self._site.send_payload(
                    other, TermStateQuery(self._site.site, self.round_no)
                )
            return

        self._decide_and_broadcast(others)

    def _decide_and_broadcast(self, others: list[SiteId]) -> None:
        engine = self._site.engine
        decision = self._rule.decide(self._site.site, engine.state)

        if self.mode == "cooperative":
            adopted = self._adopted_outcome()
            if adopted is not None:
                self._site.trace(
                    "term.adopted",
                    f"adopting already-final outcome {adopted.value}",
                    site=self._site.site,
                )
                self._decision = adopted
                self._broadcast_decision(others)
                return

        if self.mode == "unsafe-skip-phase1" and decision.is_final:
            # ABLATION: apply locally, then broadcast without phase 1.
            # Unsafe on purpose — see TERMINATION_MODES.
            self._decision = decision
            self._phase = "done"
            if not engine.finished:
                engine.force_outcome(decision, via="termination")
            for other in others:
                self._site.send_payload(other, TermDecision(decision, self.round_no))
            self._phase_exit("decided (unsafe ablation)")
            return

        if decision is Outcome.BLOCKED:
            self.blocked = True
            self._phase = "done"
            self._site.trace(
                "term.blocked",
                f"backup in state {engine.state!r} cannot decide safely",
                site=self._site.site,
            )
            for other in others:
                self._site.send_payload(other, TermBlocked(self.round_no))
            self._phase_exit("blocked")
            self._site.notify_blocked()
            return

        self._decision = decision
        if engine.finished:
            # Slide 39: phase 1 can be omitted when the backup is
            # already in a commit or abort state.
            self._broadcast_decision(others)
            return

        self._phase = "await_acks"
        self._awaiting_acks = set(others)
        self._site.trace(
            "term.phase1",
            f"backup in {engine.state!r} decided {decision.value}; "
            f"ordering {others} to adopt state {engine.state!r}",
            site=self._site.site,
        )
        for other in others:
            self._site.send_payload(
                other, TermMoveTo(self._site.site, engine.state, self.round_no)
            )
        self._maybe_finish_phase1()

    def _adopted_outcome(self) -> Optional[Outcome]:
        """A final outcome reported by some polled peer, if any."""
        for reply in self._state_replies.values():
            if reply.outcome.is_final:
                return reply.outcome
        return None

    def _maybe_finish_states(self) -> None:
        if self._phase != "await_states" or self._awaiting_states:
            return
        others = [
            s
            for s in self._site.operational_participants()
            if s != self._site.site
        ]
        self._decide_and_broadcast(others)

    def _maybe_finish_phase1(self) -> None:
        if self._phase != "await_acks" or self._awaiting_acks:
            return
        others = [
            s
            for s in self._site.operational_participants()
            if s != self._site.site
        ]
        self._broadcast_decision(others)

    def _broadcast_decision(self, others: list[SiteId]) -> None:
        assert self._decision is not None
        self._phase = "done"
        self.blocked = False
        for other in others:
            self._site.send_payload(other, TermDecision(self._decision, self.round_no))
        if not self._site.engine.finished:
            self._site.engine.force_outcome(self._decision, via="termination")
        self._phase_exit("decided")

    # ------------------------------------------------------------------
    # Participant side
    # ------------------------------------------------------------------

    def on_move_to(self, sender: SiteId, msg: TermMoveTo) -> None:
        """Phase 1 order: adopt the backup's state, then acknowledge."""
        if msg.round_no < self.round_no:
            return  # Straggler from a superseded backup.
        self.round_no = msg.round_no
        self.blocked = False
        if not self._site.engine.finished:
            self._site.engine.force_state(msg.state)
        self._site.send_payload(msg.backup, TermAck(msg.round_no))

    def on_ack(self, sender: SiteId, msg: TermAck) -> None:
        """A participant acknowledged phase 1."""
        if msg.round_no != self.round_no or self._phase != "await_acks":
            return
        self._awaiting_acks.discard(sender)
        self._maybe_finish_phase1()

    def on_state_query(self, sender: SiteId, msg: TermStateQuery) -> None:
        """Cooperative phase 0: report our local state and outcome."""
        if msg.round_no < self.round_no:
            return
        self.round_no = max(self.round_no, msg.round_no)
        engine = self._site.engine
        self._site.send_payload(
            msg.backup,
            TermStateReply(engine.state, engine.outcome, msg.round_no),
        )

    def on_state_reply(self, sender: SiteId, msg: TermStateReply) -> None:
        """Cooperative phase 0: collect one peer's state report."""
        if msg.round_no != self.round_no or self._phase != "await_states":
            return
        self._state_replies[sender] = msg
        self._awaiting_states.discard(sender)
        self._maybe_finish_states()

    def on_decision(self, sender: SiteId, msg: TermDecision) -> None:
        """Phase 2 order: apply the backup's decision.

        Accepted regardless of round: a superseded backup only ever
        broadcasts after completing phase 1, so every operational site
        (including any newer backup) holds the same local state and
        would reach the same decision — stale decisions cannot
        conflict with fresh ones.
        """
        self.round_no = max(self.round_no, msg.round_no)
        self.blocked = False
        self._phase = "done"
        if not self._site.engine.finished:
            self._site.engine.force_outcome(msg.outcome, via="termination")
        self._phase_exit("decided")

    def on_blocked(self, sender: SiteId, msg: TermBlocked) -> None:
        """The backup announced that no safe decision exists."""
        if msg.round_no < self.round_no:
            return
        self.round_no = msg.round_no
        if not self._site.engine.finished:
            self.blocked = True
            self._phase = "done"
            self._phase_exit("blocked")
            self._site.notify_blocked()
