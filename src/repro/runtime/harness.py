"""The run orchestrator: one distributed transaction, end to end.

:class:`CommitRun` assembles a simulator, a network, one
:class:`~repro.runtime.site.CommitSite` per participant, a crash
schedule, and executes until quiescence, returning a
:class:`RunResult` with per-site outcomes, blocking information, and
network statistics.  Runs are deterministic in (spec, seed, schedule).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional, TYPE_CHECKING

from repro.errors import AtomicityViolationError
from repro.fsa.messages import EXTERNAL
from repro.fsa.spec import ProtocolSpec
from repro.net.latency import LatencyModel
from repro.net.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.metrics.registry import MetricsRegistry
from repro.runtime.decision import TerminationRule
from repro.runtime.policies import UnanimousYes, VotePolicy
from repro.runtime.site import CommitSite
from repro.runtime.termination import ElectionStrategy
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceLog
from repro.types import Outcome, SimTime, SiteId, Vote
from repro.workload.crashes import (
    CrashAfterPayloads,
    CrashAt,
    CrashDuringTransition,
    CrashEvent,
)


@dataclasses.dataclass
class SiteReport:
    """Final status of one site after a run.

    Attributes:
        site: The site id.
        outcome: Logged outcome (UNDECIDED when none was reached).
        via: How the outcome was reached (``protocol`` /
            ``termination`` / ``recovery``), or ``None``.
        decided_at: Virtual decision time, or ``None``.
        blocked: Whether the site ended blocked (operational, undecided,
            and told by the termination protocol that no safe decision
            exists).
        crashed: Whether the site crashed during the run.
        alive: Whether the site was operational at the end.
        transitions_fired: FSA transitions executed by the site.
        vote: The vote the site force-logged before crashing or
            deciding (``None`` when it never voted).
        read_only: Whether the site exited the protocol read-only after
            phase 1 (no outcome, no log records — by design).
    """

    site: SiteId
    outcome: Outcome
    via: Optional[str]
    decided_at: Optional[SimTime]
    blocked: bool
    crashed: bool
    alive: bool
    transitions_fired: int
    vote: Optional[Vote] = None
    read_only: bool = False


@dataclasses.dataclass
class RunResult:
    """Everything observable about one completed run."""

    protocol: str
    n_sites: int
    reports: dict[SiteId, SiteReport]
    duration: SimTime
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    events_fired: int
    trace: TraceLog

    def outcomes(self) -> dict[SiteId, Outcome]:
        """Per-site logged outcome."""
        return {site: report.outcome for site, report in self.reports.items()}

    def decided_outcomes(self) -> set[Outcome]:
        """The set of final outcomes actually logged by any site."""
        return {
            report.outcome
            for report in self.reports.values()
            if report.outcome.is_final
        }

    @property
    def atomic(self) -> bool:
        """Whether no two sites logged conflicting outcomes.

        This audit covers *crashed* sites too: a coordinator that
        logged commit before dying counts, which is exactly the trap
        blocking protocols fall into.
        """
        return len(self.decided_outcomes()) <= 1

    @property
    def blocked_sites(self) -> list[SiteId]:
        """Operational sites that ended blocked."""
        return sorted(
            site for site, report in self.reports.items() if report.blocked
        )

    @property
    def undecided_operational(self) -> list[SiteId]:
        """Operational sites that never reached a decision.

        Read-only participants are excluded: ending without an outcome
        is their normal exit, not a liveness failure.
        """
        return sorted(
            site
            for site, report in self.reports.items()
            if report.alive
            and not report.outcome.is_final
            and not report.read_only
        )

    def decision_times(self) -> dict[SiteId, SimTime]:
        """Decision time per decided site."""
        return {
            site: report.decided_at
            for site, report in self.reports.items()
            if report.decided_at is not None
        }

    def assert_atomic(self) -> None:
        """Raise if the run violated atomicity.

        Raises:
            AtomicityViolationError: With the conflicting outcomes.
        """
        if not self.atomic:
            raise AtomicityViolationError(
                f"{self.protocol}: mixed outcomes {self.outcomes()!r}"
            )


class CommitRun:
    """Configure and execute one distributed transaction.

    Args:
        spec: The protocol to run.
        seed: Root seed (drives latency noise).
        latency: Network latency model (default: fixed 1.0).
        vote_policy: How sites vote (default: unanimous yes).
        crashes: Crash schedule (see :mod:`repro.workload.crashes`).
        detection_delay: Failure-detector reporting delay.
        termination_enabled: Run the termination protocol on failures.
        elect: Backup-coordinator election strategy.
        rule: Pre-built termination rule; built from ``spec`` when
            omitted.  Pass one in when sweeping many runs of the same
            protocol — building it costs a state-graph enumeration.
        requery_interval: Recovery re-query period.
        max_time: Stop the simulation at this virtual time even if
            events remain (bounds blocked runs).
        trace: Optional pre-built trace log — pass a bounded one
            (``TraceLog(max_entries=...)``) to cap trace memory on
            long campaigns; a fresh unbounded log is used by default.
        registry: Optional shared metrics registry; when given, the
            finished run is rolled into it via
            :func:`repro.metrics.registry.observe_run`, so sweeps
            accumulate per-protocol counters/histograms without
            per-call boilerplate.
        instrument: Optional callback invoked with ``(sim, network,
            sites)`` after the run's substrate is assembled but before
            any event fires.  This is the schedule explorer's entry
            point for installing its choice-point hooks
            (:class:`~repro.sim.simulator.Simulator` chooser,
            :class:`~repro.net.network.Network` fault injector); tests
            can use it to observe or perturb a run without subclassing.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        vote_policy: Optional[VotePolicy] = None,
        crashes: Iterable[CrashEvent] = (),
        detection_delay: float = 1.0,
        termination_enabled: bool = True,
        termination_mode: str = "standard",
        total_failure_recovery: bool = False,
        presumption: str = "none",
        elect: Optional[ElectionStrategy] = None,
        rule: Optional[TerminationRule] = None,
        requery_interval: float = 5.0,
        partition_at: Optional[SimTime] = None,
        partition_groups: Optional[list[set[SiteId]]] = None,
        max_time: SimTime = 1000.0,
        trace: Optional[TraceLog] = None,
        registry: Optional["MetricsRegistry"] = None,
        instrument: Optional[
            Callable[[Simulator, Network, dict[SiteId, CommitSite]], None]
        ] = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.latency = latency
        self.vote_policy = vote_policy if vote_policy is not None else UnanimousYes()
        self.crashes = tuple(crashes)
        self.detection_delay = detection_delay
        self.termination_enabled = termination_enabled
        self.termination_mode = termination_mode
        self.total_failure_recovery = total_failure_recovery
        self.presumption = presumption
        self.elect = elect
        # Building a TerminationRule costs a state-graph enumeration, so
        # it is skipped when the termination protocol is disabled (e.g.
        # large-n happy-path sweeps where no failure can occur).
        if rule is None and termination_enabled:
            rule = TerminationRule(spec)
        self.rule = rule
        self.requery_interval = requery_interval
        if (partition_at is None) != (partition_groups is None):
            raise ValueError(
                "partition_at and partition_groups must be given together"
            )
        self.partition_at = partition_at
        self.partition_groups = partition_groups
        self.max_time = max_time
        self.trace = trace
        self.registry = registry
        self.instrument = instrument
        self._validate_crashes()

    def _validate_crashes(self) -> None:
        participants = set(self.spec.automata)
        for event in self.crashes:
            if event.site not in participants:
                raise ValueError(
                    f"crash schedule names site {event.site}, which does not "
                    f"participate in {self.spec.name!r}"
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self) -> RunResult:
        """Run the transaction to quiescence and collect the result."""
        from repro.sim import lastrun

        lastrun.note(
            "commit_run",
            protocol=self.spec.name,
            n_sites=self.spec.n_sites,
            seed=self.seed,
            crashes=len(self.crashes),
            termination_mode=self.termination_mode,
        )
        sim = Simulator(seed=self.seed, trace=self.trace)
        network = Network(
            sim, latency=self.latency, detection_delay=self.detection_delay
        )
        decided_at: dict[SiteId, SimTime] = {}
        vias: dict[SiteId, str] = {}
        blocked: set[SiteId] = set()

        def on_outcome(site: SiteId, outcome: Outcome, via: str) -> None:
            decided_at.setdefault(site, sim.now)
            vias.setdefault(site, via)
            blocked.discard(site)

        def on_blocked(site: SiteId) -> None:
            blocked.add(site)

        sites: dict[SiteId, CommitSite] = {}
        for site_id in self.spec.sites:
            sites[site_id] = CommitSite(
                sim=sim,
                network=network,
                spec=self.spec,
                site_id=site_id,
                vote_policy=self.vote_policy,
                rule=self.rule,
                elect=self.elect,
                termination_enabled=self.termination_enabled,
                termination_mode=self.termination_mode,
                total_failure_recovery=self.total_failure_recovery,
                presumption=self.presumption,
                requery_interval=self.requery_interval,
                on_outcome=on_outcome,
                on_blocked=on_blocked,
            )

        if self.instrument is not None:
            self.instrument(sim, network, sites)

        self._schedule_crashes(sim, network, sites)

        if self.partition_at is not None:
            groups = self.partition_groups
            sim.schedule(
                self.partition_at,
                lambda: network.partition(groups),
                label="partition network",
            )

        # Kick off the protocol: deliver the external inputs.
        for msg in sorted(self.spec.initial_messages):
            assert msg.src == EXTERNAL
            sim.schedule(
                0.0,
                lambda m=msg: sites[m.dst].inject_external(m),
                label=f"external {msg}",
            )

        sim.run(until=self.max_time)
        duration = sim.last_event_time

        reports = {}
        for site_id, site in sites.items():
            outcome = site.log.outcome()
            vote_record = site.log.vote()
            reports[site_id] = SiteReport(
                site=site_id,
                outcome=outcome,
                via=vias.get(site_id),
                decided_at=decided_at.get(site_id),
                blocked=site_id in blocked and not outcome.is_final,
                crashed=site.ever_crashed,
                alive=site.alive,
                transitions_fired=site.engine.transitions_fired,
                vote=vote_record.vote if vote_record is not None else None,
                read_only=site_id in self.spec.read_only_sites,
            )
        result = RunResult(
            protocol=self.spec.name,
            n_sites=self.spec.n_sites,
            reports=reports,
            duration=duration,
            messages_sent=network.messages_sent,
            messages_delivered=network.messages_delivered,
            messages_dropped=network.messages_dropped,
            events_fired=sim.events_fired,
            trace=sim.trace,
        )
        if self.registry is not None:
            from repro.metrics.registry import observe_run

            observe_run(self.registry, result)
        return result

    def _schedule_crashes(
        self,
        sim: Simulator,
        network: Network,
        sites: dict[SiteId, CommitSite],
    ) -> None:
        for event in self.crashes:
            site = sites[event.site]

            def crash(target: CommitSite = site) -> None:
                if not target.alive:
                    return
                target.crash()
                network.crash(target.site)

            if isinstance(event, CrashAt):
                sim.schedule(event.at, crash, label=f"crash site {event.site}")
            elif isinstance(event, CrashDuringTransition):
                site.engine.arm_partial_crash(
                    event.transition_number, event.after_writes, crash
                )
            elif isinstance(event, CrashAfterPayloads):
                site.arm_payload_crash(event.payload_number, crash)
            else:  # pragma: no cover - exhaustive over CrashEvent
                raise TypeError(f"unknown crash event {event!r}")

            if event.restart_at is not None:

                def restart(target: CommitSite = site) -> None:
                    if target.alive:
                        return
                    network.restart(target.site)
                    target.restart()

                sim.schedule_at(
                    event.restart_at, restart, label=f"restart site {event.site}"
                )
