"""Multi-transaction multiplexing: many commit instances, one network.

A real transaction manager runs many concurrent commit-protocol
instances; a single site crash therefore lands on *every* in-flight
transaction at once.  :class:`MultiCommitRun` reproduces that: one
simulator, one network, one :class:`MultiSite` per site — each hosting
an independent engine/termination/recovery stack per transaction —
with protocol traffic multiplexed through :class:`Tagged` envelopes.

Experiment Q7 uses this to measure the amortized effect of one
coordinator crash across a window of staggered transactions: under 3PC
every affected instance terminates (one election per instance), while
under 2PC every instance whose decision was still pending blocks.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Optional

from repro.fsa.messages import EXTERNAL, Msg
from repro.fsa.spec import ProtocolSpec
from repro.net.latency import LatencyModel
from repro.net.message import Envelope
from repro.net.network import Network
from repro.runtime.decision import TerminationRule
from repro.runtime.engine import Engine
from repro.runtime.harness import RunResult, SiteReport
from repro.runtime.log import DTLog
from repro.runtime.messages import (
    OutcomeQuery,
    OutcomeReply,
    ProtoMsg,
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.runtime.policies import UnanimousYes, VotePolicy
from repro.runtime.recovery import RecoveryController
from repro.runtime.termination import ElectionStrategy, TerminationController
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.types import Outcome, SimTime, SiteId, TransactionId, Vote
from repro.workload.crashes import CrashAt, CrashEvent


@dataclasses.dataclass(frozen=True)
class Tagged:
    """A payload multiplexed onto one network, tagged with its xid."""

    xid: TransactionId
    payload: Any

    def __str__(self) -> str:
        return f"x{self.xid}:{self.payload}"


class TxnAgent:
    """One transaction's protocol stack at one site.

    Presents the slice of the :class:`~repro.runtime.site.CommitSite`
    interface the termination and recovery controllers consume, while
    delegating liveness, timers, and transport to the hosting
    :class:`MultiSite`.
    """

    def __init__(
        self,
        host: "MultiSite",
        xid: TransactionId,
        vote_policy: VotePolicy,
        rule: TerminationRule,
        elect: Optional[ElectionStrategy],
        termination_mode: str,
        requery_interval: float,
    ) -> None:
        self.host = host
        self.xid = xid
        self.site = host.site
        self.spec = host.spec
        self.log = DTLog()
        self.vote_policy = vote_policy
        self.engine = self._fresh_engine()
        self.termination = TerminationController(
            self, rule, elect=elect, mode=termination_mode
        )
        self.recovery = RecoveryController(
            self, requery_interval=requery_interval
        )

    def _fresh_engine(self) -> Engine:
        return Engine(
            automaton=self.spec.automaton(self.site),
            vote_policy=self.vote_policy,
            log=self.log,
            send=self._send_model,
            now=lambda: self.host.sim.now,
            on_final=self._decided,
            on_trace=lambda category, detail, **data: self.trace(
                category, detail, site=self.site, **data
            ),
        )

    # -- the CommitSite-like surface the controllers rely on -----------

    @property
    def alive(self) -> bool:
        return self.host.alive

    @property
    def ever_crashed(self) -> bool:
        return self.host.ever_crashed

    @property
    def network(self) -> Network:
        return self.host.network

    def now(self) -> SimTime:
        return self.host.sim.now

    def send_payload(self, dst: SiteId, payload: Any) -> None:
        self.host.send_tagged(self.xid, dst, payload)

    def trace(self, category: str, detail: str, site=None, **data) -> None:
        self.host.trace(
            category, f"[x{self.xid}] {detail}", site=site, xid=self.xid, **data
        )

    def operational_participants(self) -> list[SiteId]:
        return self.host.operational_participants()

    def notify_blocked(self) -> None:
        self.host.notify_blocked(self.xid)

    def set_timer(self, key: str, delay: float, callback) -> None:
        self.host.set_timer(f"x{self.xid}:{key}", delay, callback)

    def cancel_timer(self, key: str) -> bool:
        return self.host.cancel_timer(f"x{self.xid}:{key}")

    # -- internal ---------------------------------------------------------

    def _send_model(self, msg: Msg) -> None:
        self.host.send_tagged(self.xid, msg.dst, ProtoMsg(msg.kind))

    def _decided(self, outcome: Outcome, via: str) -> None:
        self.trace(
            "site.decided", f"{outcome.value} via {via}", site=self.site, via=via
        )
        self.host.record_outcome(self.xid, outcome, via)


class MultiSite(Process):
    """One site hosting one :class:`TxnAgent` per transaction."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        spec: ProtocolSpec,
        site_id: SiteId,
        on_outcome: Callable[[TransactionId, SiteId, Outcome, str], None],
        on_blocked: Callable[[TransactionId, SiteId], None],
        termination_enabled: bool = True,
    ) -> None:
        super().__init__(sim, name=f"msite-{site_id}")
        self.site = site_id
        self.spec = spec
        self.network = network
        self.agents: dict[TransactionId, TxnAgent] = {}
        self.known_failed: set[SiteId] = set()
        self.ever_crashed = False
        self.termination_enabled = termination_enabled
        self._on_outcome = on_outcome
        self._on_blocked = on_blocked
        network.attach(site_id, self)
        network.add_failure_listener(site_id, self._peer_failed)
        network.add_recovery_listener(site_id, self._peer_recovered)

    def add_transaction(
        self,
        xid: TransactionId,
        vote_policy: VotePolicy,
        rule: TerminationRule,
        elect: Optional[ElectionStrategy],
        termination_mode: str,
        requery_interval: float,
    ) -> TxnAgent:
        """Register one transaction's agent at this site."""
        agent = TxnAgent(
            self, xid, vote_policy, rule, elect, termination_mode,
            requery_interval,
        )
        self.agents[xid] = agent
        return agent

    # -- transport ---------------------------------------------------------

    def send_tagged(self, xid: TransactionId, dst: SiteId, payload: Any) -> None:
        if self.alive:
            self.network.send(self.site, dst, Tagged(xid, payload))

    def deliver(self, envelope: Envelope) -> None:
        if not self.alive or not isinstance(envelope.payload, Tagged):
            return
        tagged = envelope.payload
        agent = self.agents.get(tagged.xid)
        if agent is None:
            return
        payload = tagged.payload
        if isinstance(payload, ProtoMsg):
            if not self.ever_crashed:
                agent.engine.receive(
                    Msg(payload.kind, envelope.src, self.site)
                )
        elif isinstance(payload, TermMoveTo):
            if not self.ever_crashed:
                agent.termination.on_move_to(envelope.src, payload)
        elif isinstance(payload, TermAck):
            agent.termination.on_ack(envelope.src, payload)
        elif isinstance(payload, TermDecision):
            agent.termination.on_decision(envelope.src, payload)
        elif isinstance(payload, TermBlocked):
            agent.termination.on_blocked(envelope.src, payload)
        elif isinstance(payload, TermStateQuery):
            if not self.ever_crashed:
                agent.termination.on_state_query(envelope.src, payload)
        elif isinstance(payload, TermStateReply):
            agent.termination.on_state_reply(envelope.src, payload)
        elif isinstance(payload, OutcomeQuery):
            agent.recovery.on_query(envelope.src, payload)
        elif isinstance(payload, OutcomeReply):
            agent.recovery.on_reply(envelope.src, payload)

    def inject_external(self, xid: TransactionId, msg: Msg) -> None:
        """Deliver one transaction's external input."""
        agent = self.agents.get(xid)
        if agent is not None and self.alive:
            agent.engine.receive(msg)

    # -- notifications -------------------------------------------------------

    def _peer_failed(self, failed: SiteId) -> None:
        if failed not in self.spec.automata:
            return
        self.known_failed.add(failed)
        if not self.termination_enabled or self.ever_crashed:
            return
        for agent in self.agents.values():
            agent.termination.on_peer_failure(failed)

    def _peer_recovered(self, peer: SiteId) -> None:
        if peer not in self.spec.automata:
            return
        for agent in self.agents.values():
            agent.recovery.on_peer_recovered(peer)

    def operational_participants(self) -> list[SiteId]:
        return sorted(
            site
            for site in self.spec.sites
            if site not in self.known_failed
            and (site != self.site or self.alive)
        )

    # -- outcome plumbing ------------------------------------------------

    def record_outcome(
        self, xid: TransactionId, outcome: Outcome, via: str
    ) -> None:
        self._on_outcome(xid, self.site, outcome, via)

    def notify_blocked(self, xid: TransactionId) -> None:
        self._on_blocked(xid, self.site)

    # -- crash lifecycle ---------------------------------------------------

    def on_crash(self) -> None:
        self.ever_crashed = True
        for agent in self.agents.values():
            agent.engine.halt()
        self.trace("site.down", "crashed; volatile state lost", site=self.site)

    def on_restart(self) -> None:
        self.trace("site.up", "restarted; recovering all transactions", site=self.site)
        for agent in self.agents.values():
            agent.engine = agent._fresh_engine()
            agent.recovery.on_restart()


@dataclasses.dataclass
class MultiRunResult:
    """Results of a multi-transaction run: one RunResult-like view per xid."""

    per_transaction: dict[TransactionId, RunResult]
    duration: SimTime
    messages_sent: int

    @property
    def atomic(self) -> bool:
        """Whether every transaction individually preserved atomicity."""
        return all(r.atomic for r in self.per_transaction.values())

    def outcomes(self) -> dict[TransactionId, dict[SiteId, Outcome]]:
        """Per-transaction per-site outcomes."""
        return {
            xid: result.outcomes()
            for xid, result in self.per_transaction.items()
        }

    def blocked_transactions(self) -> list[TransactionId]:
        """Transactions with at least one blocked operational site."""
        return sorted(
            xid
            for xid, result in self.per_transaction.items()
            if result.blocked_sites
        )


class MultiCommitRun:
    """Run several staggered transactions of one protocol concurrently.

    Args:
        spec: The protocol every transaction runs (same site set).
        start_times: Virtual start time of each transaction; the list's
            length determines the transaction count (xids 1..k).
        seed: Root seed.
        latency: Network latency model.
        vote_policies: Optional per-xid vote policies (default all-yes).
        crashes: Site-level crash schedule — a crash affects every
            in-flight transaction at that site.  Only
            :class:`~repro.workload.crashes.CrashAt` events are
            supported here (per-transaction transition counting is not
            meaningful across multiplexed instances).
        rule: Shared termination rule.
        termination_mode: Variant for all transactions.
        max_time: Simulation deadline.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        start_times: Iterable[SimTime],
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        vote_policies: Optional[dict[TransactionId, VotePolicy]] = None,
        crashes: Iterable[CrashEvent] = (),
        detection_delay: float = 1.0,
        rule: Optional[TerminationRule] = None,
        elect: Optional[ElectionStrategy] = None,
        termination_mode: str = "standard",
        termination_enabled: bool = True,
        requery_interval: float = 5.0,
        max_time: SimTime = 1000.0,
    ) -> None:
        self.spec = spec
        self.start_times = list(start_times)
        self.seed = seed
        self.latency = latency
        self.vote_policies = vote_policies or {}
        self.crashes = tuple(crashes)
        self.detection_delay = detection_delay
        self.rule = rule if rule is not None else TerminationRule(spec)
        self.elect = elect
        self.termination_mode = termination_mode
        self.termination_enabled = termination_enabled
        self.requery_interval = requery_interval
        self.max_time = max_time
        for event in self.crashes:
            if not isinstance(event, CrashAt):
                raise ValueError(
                    "MultiCommitRun supports CrashAt events only; got "
                    f"{event!r}"
                )

    def execute(self) -> MultiRunResult:
        """Run all transactions to quiescence."""
        sim = Simulator(seed=self.seed)
        network = Network(
            sim, latency=self.latency, detection_delay=self.detection_delay
        )
        xids = [TransactionId(i + 1) for i in range(len(self.start_times))]
        decided: dict[tuple[TransactionId, SiteId], tuple[Outcome, str, SimTime]] = {}
        blocked: set[tuple[TransactionId, SiteId]] = set()

        def on_outcome(xid, site, outcome, via) -> None:
            decided.setdefault((xid, site), (outcome, via, sim.now))
            blocked.discard((xid, site))

        def on_blocked(xid, site) -> None:
            blocked.add((xid, site))

        sites = {
            site_id: MultiSite(
                sim,
                network,
                self.spec,
                site_id,
                on_outcome=on_outcome,
                on_blocked=on_blocked,
                termination_enabled=self.termination_enabled,
            )
            for site_id in self.spec.sites
        }
        for xid in xids:
            policy = self.vote_policies.get(xid, UnanimousYes())
            for site in sites.values():
                site.add_transaction(
                    xid,
                    policy,
                    self.rule,
                    self.elect,
                    self.termination_mode,
                    self.requery_interval,
                )

        for xid, start in zip(xids, self.start_times):
            for msg in sorted(self.spec.initial_messages):
                assert msg.src == EXTERNAL
                sim.schedule_at(
                    start,
                    lambda x=xid, m=msg: sites[m.dst].inject_external(x, m),
                    label=f"external x{xid} {msg}",
                )

        for event in self.crashes:
            target = sites[event.site]

            def crash(t: MultiSite = target) -> None:
                if t.alive:
                    t.crash()
                    network.crash(t.site)

            sim.schedule(event.at, crash, label=f"crash site {event.site}")
            if event.restart_at is not None:

                def restart(t: MultiSite = target) -> None:
                    if not t.alive:
                        network.restart(t.site)
                        t.restart()

                sim.schedule_at(
                    event.restart_at, restart, label=f"restart {event.site}"
                )

        sim.run(until=self.max_time)

        per_transaction: dict[TransactionId, RunResult] = {}
        for xid in xids:
            reports = {}
            for site_id, site in sites.items():
                agent = site.agents[xid]
                outcome = agent.log.outcome()
                info = decided.get((xid, site_id))
                vote = agent.log.vote()
                reports[site_id] = SiteReport(
                    site=site_id,
                    outcome=outcome,
                    via=info[1] if info else None,
                    decided_at=info[2] if info else None,
                    blocked=(xid, site_id) in blocked and not outcome.is_final,
                    crashed=site.ever_crashed,
                    alive=site.alive,
                    transitions_fired=agent.engine.transitions_fired,
                    vote=vote.vote if vote else None,
                )
            per_transaction[xid] = RunResult(
                protocol=self.spec.name,
                n_sites=self.spec.n_sites,
                reports=reports,
                duration=sim.last_event_time,
                messages_sent=network.messages_sent,
                messages_delivered=network.messages_delivered,
                messages_dropped=network.messages_dropped,
                events_fired=sim.events_fired,
                trace=sim.trace,
            )
        return MultiRunResult(
            per_transaction=per_transaction,
            duration=sim.last_event_time,
            messages_sent=network.messages_sent,
        )
