"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: simulation errors, protocol-specification errors, analysis
errors, runtime errors, and database errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class ClockError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessError(SimulationError):
    """A simulated process was used in an invalid way (e.g. started twice)."""


class SchedulerChoiceError(SimulationError):
    """An event chooser returned an out-of-range index."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class UnknownSiteError(NetworkError):
    """A message was addressed to a site id that is not attached."""


class SiteDownError(NetworkError):
    """An operation required a live site but the site has crashed."""


# ---------------------------------------------------------------------------
# Protocol specification (FSA model)
# ---------------------------------------------------------------------------


class SpecError(ReproError):
    """Base class for protocol-specification errors."""


class InvalidAutomatonError(SpecError):
    """A role automaton violates a structural requirement of the model.

    The formal model of Skeen (1981) requires automata to be acyclic,
    to have an initial state, and to partition final states into commit
    and abort states.  Violations raise this error during validation.
    """


class InvalidProtocolError(SpecError):
    """A protocol spec is self-inconsistent (roles, sites, messages)."""


class InstantiationError(SpecError):
    """A protocol spec could not be instantiated for a given site count."""


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for global-state analysis errors."""


class StateGraphTooLargeError(AnalysisError):
    """Reachable-state enumeration exceeded the configured node budget.

    The reachable state graph grows exponentially with the number of
    sites (Skeen 1981, "Comments on reachable state graphs"), so the
    enumerator enforces an explicit budget instead of exhausting memory.
    """


class NotSynchronousError(AnalysisError):
    """An operation required a protocol synchronous within one transition."""


class SynthesisError(AnalysisError):
    """Buffer-state synthesis could not make the protocol nonblocking."""


# ---------------------------------------------------------------------------
# Runtime (executable protocols)
# ---------------------------------------------------------------------------


class RuntimeProtocolError(ReproError):
    """Base class for errors in the executable commit-protocol engine."""


class TransitionError(RuntimeProtocolError):
    """The engine could not fire a unique enabled transition."""


class TerminationError(RuntimeProtocolError):
    """The termination protocol failed to terminate the transaction."""


class RecoveryError(RuntimeProtocolError):
    """A crashed site could not recover its transaction state."""


class AtomicityViolationError(RuntimeProtocolError):
    """Some site committed while another aborted the same transaction.

    This is the inconsistency that commit protocols exist to prevent; it
    is raised by audit utilities, never expected during correct runs.
    """


# ---------------------------------------------------------------------------
# Parallel sweep runner
# ---------------------------------------------------------------------------


class SweepError(ReproError):
    """Base class for parallel sweep-runner errors."""


class SweepConfigError(SweepError):
    """A sweep plan is invalid (duplicate task keys, bad config)."""


class SweepTaskError(SweepError):
    """A sweep task failed in a worker; carries the task description."""


class SweepTimeoutError(SweepError):
    """A sweep task exceeded the per-task timeout (hung worker)."""


# ---------------------------------------------------------------------------
# Schedule explorer
# ---------------------------------------------------------------------------


class ExploreError(ReproError):
    """Base class for schedule-explorer errors."""


class ExploreConfigError(ExploreError):
    """An exploration was configured inconsistently."""


class ReplayDivergenceError(ExploreError):
    """A strict schedule replay hit a choice point that no longer matches.

    The code (or config) executing the replay differs from the one that
    recorded the schedule — re-explore and re-minimize instead of
    trusting the stale artifact.
    """


# ---------------------------------------------------------------------------
# Database substrate
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for database-substrate errors."""


class TransactionAborted(DatabaseError):
    """The transaction was aborted (deadlock victim, vote-no, crash)."""


class LockError(DatabaseError):
    """An invalid lock operation (e.g. unlock without holding)."""


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""


class WALError(DatabaseError):
    """The write-ahead log was used incorrectly or is corrupt."""
