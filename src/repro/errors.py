"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: simulation errors, protocol-specification errors, analysis
errors, runtime errors, and database errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class ClockError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessError(SimulationError):
    """A simulated process was used in an invalid way (e.g. started twice)."""


class SchedulerChoiceError(SimulationError):
    """An event chooser returned an out-of-range index."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class UnknownSiteError(NetworkError):
    """A message was addressed to a site id that is not attached."""


class SiteDownError(NetworkError):
    """An operation required a live site but the site has crashed."""


# ---------------------------------------------------------------------------
# Protocol specification (FSA model)
# ---------------------------------------------------------------------------


class SpecError(ReproError):
    """Base class for protocol-specification errors."""


class InvalidAutomatonError(SpecError):
    """A role automaton violates a structural requirement of the model.

    The formal model of Skeen (1981) requires automata to be acyclic,
    to have an initial state, and to partition final states into commit
    and abort states.  Violations raise this error during validation.
    """


class InvalidProtocolError(SpecError):
    """A protocol spec is self-inconsistent (roles, sites, messages)."""


class InstantiationError(SpecError):
    """A protocol spec could not be instantiated for a given site count."""


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for global-state analysis errors."""


class StateGraphTooLargeError(AnalysisError):
    """Reachable-state enumeration exceeded the configured node budget.

    The reachable state graph grows exponentially with the number of
    sites (Skeen 1981, "Comments on reachable state graphs"), so the
    enumerator enforces an explicit budget instead of exhausting memory.
    """


class NotSynchronousError(AnalysisError):
    """An operation required a protocol synchronous within one transition."""


class SynthesisError(AnalysisError):
    """Buffer-state synthesis could not make the protocol nonblocking."""


# ---------------------------------------------------------------------------
# Runtime (executable protocols)
# ---------------------------------------------------------------------------


class RuntimeProtocolError(ReproError):
    """Base class for errors in the executable commit-protocol engine."""


class TransitionError(RuntimeProtocolError):
    """The engine could not fire a unique enabled transition."""


class TerminationError(RuntimeProtocolError):
    """The termination protocol failed to terminate the transaction."""


class RecoveryError(RuntimeProtocolError):
    """A crashed site could not recover its transaction state."""


class AtomicityViolationError(RuntimeProtocolError):
    """Some site committed while another aborted the same transaction.

    This is the inconsistency that commit protocols exist to prevent; it
    is raised by audit utilities, never expected during correct runs.
    """


# ---------------------------------------------------------------------------
# Parallel sweep runner
# ---------------------------------------------------------------------------


class SweepError(ReproError):
    """Base class for parallel sweep-runner errors."""


class SweepConfigError(SweepError):
    """A sweep plan is invalid (duplicate task keys, bad config)."""


class SweepTaskError(SweepError):
    """A sweep task failed in a worker; carries the task description."""


class SweepTimeoutError(SweepError):
    """A sweep task exceeded the per-task timeout (hung worker)."""


# ---------------------------------------------------------------------------
# Schedule explorer
# ---------------------------------------------------------------------------


class ExploreError(ReproError):
    """Base class for schedule-explorer errors."""


class ExploreConfigError(ExploreError):
    """An exploration was configured inconsistently."""


class ReplayDivergenceError(ExploreError):
    """A strict schedule replay hit a choice point that no longer matches.

    The code (or config) executing the replay differs from the one that
    recorded the schedule — re-explore and re-minimize instead of
    trusting the stale artifact.
    """


# ---------------------------------------------------------------------------
# Live cluster runtime (asyncio TCP backend)
# ---------------------------------------------------------------------------


class LiveError(ReproError):
    """Base class for errors raised by the live TCP runtime."""


class LiveConfigError(LiveError):
    """A live site/cluster was configured inconsistently."""


class TransportError(LiveError):
    """A TCP transport operation failed (framing, connect, peer loss)."""


class FrameError(TransportError):
    """A wire frame was malformed (bad length prefix, invalid JSON,
    unknown payload type, oversized frame)."""


class ClusterError(LiveError):
    """The cluster harness could not orchestrate its site processes."""


class LiveTimeoutError(LiveError):
    """A live operation did not complete within its wall-clock budget."""


# ---------------------------------------------------------------------------
# Process exit codes
# ---------------------------------------------------------------------------

#: CLI exit codes, shared by every subcommand that can fail for more
#: than one reason (``explore``, ``replay``, ``serve``, ``cluster``,
#: ``txn``).  0/1 match the long-standing convention (1 = the protocol
#: property under test was violated or could not be demonstrated); the
#: higher codes distinguish *operational* failures so CI jobs and the
#: cluster harness can tell "the protocol is wrong" from "the run
#: infrastructure broke".
EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_CONFIG = 2
EXIT_TRANSPORT = 3
EXIT_TIMEOUT = 4

#: Most-derived-first mapping used by :func:`exit_code`.
_EXIT_CODE_TABLE: tuple[tuple[type, int], ...] = (
    (LiveTimeoutError, EXIT_TIMEOUT),
    (TransportError, EXIT_TRANSPORT),
    (LiveConfigError, EXIT_CONFIG),
    (ClusterError, EXIT_TRANSPORT),
)


def exit_code(error: BaseException) -> int:
    """Map an exception to the CLI exit code for its failure class.

    Atomicity violations map to :data:`EXIT_VIOLATION`; configuration
    mistakes to :data:`EXIT_CONFIG`; transport/orchestration failures
    to :data:`EXIT_TRANSPORT`; wall-clock budget overruns to
    :data:`EXIT_TIMEOUT`.  Any other :class:`ReproError` (and anything
    else) is a violation-class failure: the run did not demonstrate
    what it was asked to.
    """
    if isinstance(error, AtomicityViolationError):
        return EXIT_VIOLATION
    for error_type, code in _EXIT_CODE_TABLE:
        if isinstance(error, error_type):
            return code
    if isinstance(error, (ValueError, KeyError)):
        return EXIT_CONFIG
    return EXIT_VIOLATION


# ---------------------------------------------------------------------------
# Database substrate
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for database-substrate errors."""


class TransactionAborted(DatabaseError):
    """The transaction was aborted (deadlock victim, vote-no, crash)."""


class LockError(DatabaseError):
    """An invalid lock operation (e.g. unlock without holding)."""


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""


class WALError(DatabaseError):
    """The write-ahead log was used incorrectly or is corrupt."""
