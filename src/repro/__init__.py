"""repro — a reproduction of Skeen's "Nonblocking Commit Protocols"
(SIGMOD 1981).

The library implements the paper's formal model of distributed commit
protocols (nondeterministic FSAs over a shared message tape), its
analytical machinery (reachable global state graphs, concurrency sets,
committable states, the fundamental nonblocking theorem and its
corollary), its design method (buffer-state synthesis turning 2PC into
3PC), and its operational protocols (termination with backup
coordinators, recovery for crashed sites) — all executable on a
deterministic discrete-event simulation of sites and a reliable
network, and driven end-to-end by a distributed database substrate
with write-ahead logging and strict two-phase locking.

Quick start::

    from repro import catalog, CommitRun, check_nonblocking
    from repro.workload.crashes import CrashAt

    spec = catalog.build("3pc-central", 5)
    print(check_nonblocking(spec).describe())      # nonblocking: YES
    run = CommitRun(spec, crashes=[CrashAt(site=1, at=2.0)]).execute()
    print(run.outcomes())                          # survivors terminate

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.analysis import (
    build_state_graph,
    check_lemma,
    check_nonblocking,
    check_synchronicity,
    concurrency_set,
    concurrency_table,
    insert_buffer_states,
)
from repro.protocols import catalog
from repro.runtime import CommitRun, RunResult, TerminationRule

__version__ = "1.0.0"

__all__ = [
    "CommitRun",
    "RunResult",
    "TerminationRule",
    "__version__",
    "build_state_graph",
    "catalog",
    "check_lemma",
    "check_nonblocking",
    "check_synchronicity",
    "concurrency_set",
    "concurrency_table",
    "insert_buffer_states",
]
