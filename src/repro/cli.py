"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                 # catalog + experiment ids
    python -m repro.cli show 3pc-central 3   # render a protocol's FSAs
    python -m repro.cli analyze 2pc-central 3
    python -m repro.cli experiment T1        # regenerate one artifact
    python -m repro.cli experiment all
    python -m repro.cli run 3pc-central 4 --crash 1@2.0 --no-vote 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import check_nonblocking, check_synchronicity
from repro.experiments import EXPERIMENTS, run_experiment
from repro.fsa.render import format_spec
from repro.protocols import catalog
from repro.runtime import CommitRun
from repro.runtime.policies import FixedVotes
from repro.runtime.termination import TERMINATION_MODES
from repro.types import SiteId, Vote
from repro.workload.crashes import CrashAt


def _cmd_list(_args: argparse.Namespace) -> int:
    print("protocols:")
    for name in catalog.protocol_names():
        print(f"  {name}")
    print("experiments:")
    for experiment_id in EXPERIMENTS:
        print(f"  {experiment_id}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = catalog.build(args.protocol, args.n_sites)
    print(format_spec(spec))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = catalog.build(args.protocol, args.n_sites)
    report = check_nonblocking(spec)
    sync = check_synchronicity(spec)
    print(report.describe())
    print(
        "synchronous within one transition: "
        f"{'YES' if sync.synchronous_within_one else 'NO'} "
        f"(max lead {sync.max_lead})"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = list(EXPERIMENTS) if args.experiment_id.lower() == "all" else [
        args.experiment_id
    ]
    for experiment_id in ids:
        print(run_experiment(experiment_id).render())
        print()
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.metrics import summarize_runs
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.serialize import campaign_from_json, campaign_to_json

    spec = catalog.build(args.protocol, args.n_sites)
    generator = WorkloadGenerator(
        spec,
        seed=args.seed,
        p_no=args.p_no,
        p_crash=args.p_crash,
    )

    if args.replay is not None:
        with open(args.replay) as handle:
            transactions = campaign_from_json(handle.read())
        print(f"replaying {len(transactions)} transactions from {args.replay}")
    else:
        transactions = list(generator.transactions(args.count))

    if args.save is not None:
        with open(args.save, "w") as handle:
            handle.write(campaign_to_json(transactions))
        print(f"saved campaign to {args.save}")

    results = [generator.run(txn) for txn in transactions]
    summary = summarize_runs(results)
    print(
        summary.to_table(
            f"campaign: {spec.name}, {len(results)} transactions"
        ).render()
    )
    if summary.violations:
        print("ATOMICITY VIOLATIONS DETECTED — replay with --save to report")
        return 1
    return 0


def _parse_crash(text: str) -> CrashAt:
    """Parse ``SITE@TIME[@RESTART]`` into a :class:`CrashAt`."""
    parts = text.split("@")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"crash spec {text!r} must look like SITE@TIME or SITE@TIME@RESTART"
        )
    site = SiteId(int(parts[0]))
    at = float(parts[1])
    restart = float(parts[2]) if len(parts) == 3 else None
    return CrashAt(site=site, at=at, restart_at=restart)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = catalog.build(args.protocol, args.n_sites)
    votes = {SiteId(site): Vote.NO for site in args.no_vote}
    run = CommitRun(
        spec,
        seed=args.seed,
        vote_policy=FixedVotes(votes),
        crashes=args.crash,
        termination_mode=args.termination,
    ).execute()
    if args.trace:
        print(run.trace.format_timeline())
        print()
    if args.swimlanes:
        from repro.viz import render_run

        print(render_run(run))
        print()
    if args.audit:
        from repro.analysis.conformance import audit_run

        findings = audit_run(run, spec)
        if findings:
            print("CONFORMANCE FINDINGS:")
            for finding in findings:
                print(f"  {finding}")
            return 1
        print("conformance audit: clean")
    print(f"protocol : {run.protocol}")
    print(f"duration : {run.duration:g}")
    print(f"messages : {run.messages_sent}")
    print(f"atomic   : {'yes' if run.atomic else 'NO — VIOLATION'}")
    for site, report in sorted(run.reports.items()):
        status = report.outcome.value
        if report.blocked:
            status += " (BLOCKED)"
        via = f" via {report.via}" if report.via else ""
        down = "" if report.alive else " [down]"
        print(f"  site {site}: {status}{via}{down}")
    return 0 if run.atomic else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nonblocking commit protocols (Skeen, SIGMOD 1981)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list protocols and experiments").set_defaults(
        func=_cmd_list
    )

    show = sub.add_parser("show", help="render a protocol's automata")
    show.add_argument("protocol", choices=catalog.protocol_names())
    show.add_argument("n_sites", type=int)
    show.set_defaults(func=_cmd_show)

    analyze = sub.add_parser("analyze", help="run the nonblocking theorem")
    analyze.add_argument("protocol", choices=catalog.protocol_names())
    analyze.add_argument("n_sites", type=int)
    analyze.set_defaults(func=_cmd_analyze)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("experiment_id", help="F1..Q6 or 'all'")
    experiment.set_defaults(func=_cmd_experiment)

    campaign = sub.add_parser(
        "campaign", help="run a randomized failure-injection campaign"
    )
    campaign.add_argument("protocol", choices=catalog.protocol_names())
    campaign.add_argument("n_sites", type=int)
    campaign.add_argument("--count", type=int, default=50)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--p-no", type=float, default=0.1, dest="p_no")
    campaign.add_argument("--p-crash", type=float, default=0.3, dest="p_crash")
    campaign.add_argument(
        "--save", metavar="FILE", help="write the campaign as JSON"
    )
    campaign.add_argument(
        "--replay", metavar="FILE", help="replay a saved campaign instead"
    )
    campaign.set_defaults(func=_cmd_campaign)

    run = sub.add_parser("run", help="simulate one transaction")
    run.add_argument("protocol", choices=catalog.protocol_names())
    run.add_argument("n_sites", type=int)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        default=[],
        metavar="SITE@TIME[@RESTART]",
        help="crash a site (repeatable)",
    )
    run.add_argument(
        "--no-vote",
        type=int,
        action="append",
        default=[],
        metavar="SITE",
        help="make a site vote no (repeatable)",
    )
    run.add_argument("--trace", action="store_true", help="print the timeline")
    run.add_argument(
        "--swimlanes",
        action="store_true",
        help="print per-site swimlanes of the run",
    )
    run.add_argument(
        "--termination",
        choices=TERMINATION_MODES,
        default="standard",
        help="termination protocol variant",
    )
    run.add_argument(
        "--audit",
        action="store_true",
        help="verify the execution against the formal model",
    )
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
