"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro.cli list                 # catalog + experiment ids
    python -m repro.cli show 3pc-central 3   # render a protocol's FSAs
    python -m repro.cli analyze 2pc-central 3
    python -m repro.cli experiment T1        # regenerate one artifact
    python -m repro.cli experiment all
    python -m repro.cli run 3pc-central 4 --crash 1@2.0 --no-vote 3
    python -m repro.cli run 3pc-central 4 --crash 1@2.0 --trace-out t.jsonl
    python -m repro.cli trace t.jsonl --category net. --site 2
    python -m repro.cli trace t.jsonl --span 12   # one send->deliver span
    python -m repro.cli stats t.jsonl             # phase/decision rollup
    python -m repro.cli experiment all --workers 4
    python -m repro.cli sweep Q1 Q2 --workers 4 --cache-dir .sweep-cache
    python -m repro.cli explore --protocol 3pc-central --sites 3 \
        --budget 2000 --seed 7 --workers 4 --artifacts-dir out/
    python -m repro.cli replay out/abc123def456.json

The ``sweep`` report on stdout is deterministic: ``--workers N`` is
byte-identical to ``--workers 1`` (timings go to stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import check_nonblocking, check_synchronicity
from repro.experiments import EXPERIMENTS, run_experiment
from repro.fsa.render import format_spec
from repro.protocols import catalog
from repro.runtime import CommitRun
from repro.runtime.policies import FixedVotes
from repro.runtime.termination import TERMINATION_MODES
from repro.types import SiteId, Vote
from repro.workload.crashes import CrashAt


def _cmd_list(_args: argparse.Namespace) -> int:
    print("protocols:")
    for name in catalog.protocol_names():
        print(f"  {name}")
    print("experiments:")
    for experiment_id in EXPERIMENTS:
        print(f"  {experiment_id}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = catalog.build(args.protocol, args.n_sites)
    print(format_spec(spec))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = catalog.build(args.protocol, args.n_sites)
    report = check_nonblocking(spec)
    sync = check_synchronicity(spec)
    print(report.describe())
    print(
        "synchronous within one transition: "
        f"{'YES' if sync.synchronous_within_one else 'NO'} "
        f"(max lead {sync.max_lead})"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = list(EXPERIMENTS) if args.experiment_id.lower() == "all" else [
        args.experiment_id
    ]
    if args.workers > 1 and len(ids) > 1:
        # Fan whole experiments across worker processes; output stays
        # in the ids' order (and byte-identical to the serial loop).
        from repro.parallel import SweepRunner, SweepTask

        runner = SweepRunner(workers=args.workers)
        result = runner.run([SweepTask.make(experiment_id) for experiment_id in ids])
        renders = {
            outcome.task.experiment_id: outcome.payload["render"]
            for outcome in result.outcomes
        }
        for experiment_id in ids:
            print(renders[experiment_id.upper()])
            print()
        return 0
    for experiment_id in ids:
        print(run_experiment(experiment_id).render())
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.parallel import SweepCache, SweepRunner, plan_sweep

    tasks = plan_sweep(args.experiment_ids)
    cache = SweepCache(args.cache_dir) if args.cache_dir else None
    runner = SweepRunner(
        workers=args.workers, cache=cache, task_timeout=args.task_timeout
    )
    result = runner.run(tasks)
    print(result.report)
    if args.trace_out:
        count = result.merged.trace.save(args.trace_out)
        print(f"wrote {count} merged trace entries to {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(result.merged.registry.to_json() + "\n")
        print(f"wrote merged metrics to {args.metrics_out}")
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(result.merged.sidecar_json() + "\n")
        print(f"wrote sweep sidecar to {args.json_out}")
    cached = sum(1 for outcome in result.outcomes if outcome.cached)
    print(
        f"sweep: {len(result.outcomes)} tasks ({cached} cached), "
        f"workers={result.workers}, wall={result.wall_clock_s:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.metrics import summarize_runs
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.serialize import campaign_from_json, campaign_to_json

    spec = catalog.build(args.protocol, args.n_sites)
    generator = WorkloadGenerator(
        spec,
        seed=args.seed,
        p_no=args.p_no,
        p_crash=args.p_crash,
    )

    if args.replay is not None:
        with open(args.replay) as handle:
            transactions = campaign_from_json(handle.read())
        print(f"replaying {len(transactions)} transactions from {args.replay}")
    else:
        transactions = list(generator.transactions(args.count))

    if args.save is not None:
        with open(args.save, "w") as handle:
            handle.write(campaign_to_json(transactions))
        print(f"saved campaign to {args.save}")

    results = [generator.run(txn) for txn in transactions]
    summary = summarize_runs(results)
    print(
        summary.to_table(
            f"campaign: {spec.name}, {len(results)} transactions"
        ).render()
    )
    if summary.violations:
        print("ATOMICITY VIOLATIONS DETECTED — replay with --save to report")
        return 1
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import os

    from repro.explore import (
        ExploreConfig,
        merge_explore_payloads,
        plan_tasks,
        render_explore_report,
    )
    from repro.parallel import SweepCache, SweepRunner

    config = ExploreConfig(
        protocol=args.protocol,
        n_sites=args.n_sites,
        seed=args.seed,
        budget=args.budget,
        depth=args.depth,
        max_branch=args.max_branch,
        crash_budget=args.crashes,
        partitions=args.partitions,
        mutant=args.mutant,
        termination_mode=args.termination,
        mode=args.mode,
        shards=args.shards,
    )
    cache = SweepCache(args.cache_dir) if args.cache_dir else None
    runner = SweepRunner(
        workers=args.workers, cache=cache, task_timeout=args.task_timeout
    )
    result = runner.run(plan_tasks(config))
    combined = merge_explore_payloads(
        [outcome.payload for outcome in result.outcomes]
    )
    # Canonical report only on stdout: byte-identical for any --workers.
    print(render_explore_report(combined), end="")
    if args.json_out:
        import json as _json

        with open(args.json_out, "w") as handle:
            handle.write(
                _json.dumps(combined, indent=2, sort_keys=True) + "\n"
            )
        print(f"wrote exploration document to {args.json_out}", file=sys.stderr)
    if args.artifacts_dir and combined["violations"]:
        os.makedirs(args.artifacts_dir, exist_ok=True)
        for violation in combined["violations"]:
            path = os.path.join(
                args.artifacts_dir, f"{violation['shrunk_hash']}.json"
            )
            with open(path, "w") as handle:
                handle.write(violation["artifact"])
            print(f"wrote replay artifact {path}", file=sys.stderr)
    cached = sum(1 for outcome in result.outcomes if outcome.cached)
    print(
        f"explore: {combined['schedules']} schedules in "
        f"{len(result.outcomes)} shard tasks ({cached} cached), "
        f"workers={result.workers}, wall={result.wall_clock_s:.2f}s",
        file=sys.stderr,
    )
    from repro.errors import EXIT_OK, EXIT_VIOLATION

    return EXIT_VIOLATION if combined["verdict"] == "violation" else EXIT_OK


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.errors import EXIT_OK, EXIT_VIOLATION, ReplayDivergenceError
    from repro.explore import Explorer, ReplayArtifact, replay

    explorers: dict = {}
    failures = 0
    for path in args.files:
        artifact = ReplayArtifact.load(path)
        explorer = explorers.get(artifact.config)
        if explorer is None:
            explorer = explorers[artifact.config] = Explorer(artifact.config)
        try:
            outcome = replay(artifact, explorer=explorer)
        except ReplayDivergenceError as error:
            failures += 1
            print(f"{path}: DIVERGED — {error}")
            continue
        print(f"{path}: {outcome.describe()}")
        for problem in outcome.problems:
            print(f"  {problem}")
        if args.verbose:
            for violation in outcome.outcome.violations:
                print(f"  {violation.describe()}")
        if not outcome.ok:
            failures += 1
    if failures:
        print(f"{failures}/{len(args.files)} replays failed")
        return EXIT_VIOLATION
    print(f"{len(args.files)} replay(s) ok")
    return EXIT_OK


# ---------------------------------------------------------------------------
# Live cluster runtime (serve / cluster / txn)
# ---------------------------------------------------------------------------


def _parse_peers(text: str) -> dict:
    """Parse ``ID=HOST:PORT,ID=HOST:PORT,...`` into a peer map."""
    from repro.errors import LiveConfigError

    peers = {}
    for part in filter(None, text.split(",")):
        try:
            peer, _, address = part.partition("=")
            host, _, port = address.rpartition(":")
            peers[SiteId(int(peer))] = (host, int(port))
        except ValueError as error:
            raise LiveConfigError(
                f"bad peer spec {part!r} (want ID=HOST:PORT): {error}"
            ) from error
    return peers


def _parse_ro(text: str) -> tuple:
    """Parse ``ID,ID,...`` into a tuple of read-only site ids."""
    from repro.errors import LiveConfigError

    try:
        return tuple(SiteId(int(part)) for part in filter(None, text.split(",")))
    except ValueError as error:
        raise LiveConfigError(
            f"bad read-only site list {text!r} (want ID,ID,...): {error}"
        ) from error


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import exit_code
    from repro.live.node import LiveConfig, parse_pause_after
    from repro.live.server import serve

    try:
        config = LiveConfig(
            site=SiteId(args.site),
            spec_name=args.spec,
            n_sites=args.n_sites,
            host=args.host,
            port=args.port,
            peers=_parse_peers(args.peers),
            data_dir=Path(args.data_dir),
            hb_interval=args.hb_interval,
            suspect_after=args.suspect_after,
            requery_interval=args.requery_interval,
            termination_mode=args.termination,
            vote=args.vote,
            max_inflight=args.max_inflight,
            pause_after=(
                parse_pause_after(args.pause_after) if args.pause_after else None
            ),
            chaos=Path(args.chaos) if args.chaos else None,
            codec=args.codec,
            presumption=args.presumption,
            ro_sites=_parse_ro(args.ro),
            loop=args.loop,
            trace_max_entries=args.trace_cap,
        )
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"repro serve: {error}", file=sys.stderr)
        return exit_code(error)
    return serve(config)


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.errors import EXIT_OK, exit_code
    from repro.live.cluster import (
        ClusterConfig,
        ClusterHarness,
        gray_failure_scenario,
        kill_coordinator_scenario,
    )

    data_dir = Path(
        args.data_dir if args.data_dir else tempfile.mkdtemp(prefix="repro-cluster-")
    )
    try:
        # Built inside the guard: config mistakes (bad presumption,
        # loop, or read-only site list) exit EXIT_CONFIG, not a trace.
        config = ClusterConfig(
            spec_name=args.spec,
            n_sites=args.n_sites,
            data_dir=data_dir,
            hb_interval=args.hb_interval,
            suspect_after=args.suspect_after,
            requery_interval=args.requery_interval,
            termination_mode=args.termination,
            decide_timeout=args.timeout,
            ready_timeout=args.timeout,
            max_inflight=args.max_inflight,
            codec=args.codec,
            presumption=args.presumption,
            ro_sites=_parse_ro(args.ro),
            loop=args.loop,
            trace_cap=args.trace_cap,
        )
        with ClusterHarness(config) as harness:
            if args.scenario == "gray-failure":
                result = gray_failure_scenario(
                    harness, seed=args.chaos_seed
                ).to_dict()
                chaos_policy = harness.config.chaos
            elif args.scenario:
                result = kill_coordinator_scenario(harness).to_dict()
            else:
                harness.start()
                result = harness.bench(args.bench, concurrency=args.concurrency)
        if args.scenario == "gray-failure" and args.emit_artifact:
            # Round-trip the live counterexample into the explorer's
            # replay corpus: same split decision, microsecond replay.
            from repro.explore.chaos_bridge import gray_counterexample

            artifact = gray_counterexample(chaos_policy)
            artifact.save(args.emit_artifact)
            result["artifact"] = args.emit_artifact
            print(
                f"wrote replay artifact to {args.emit_artifact}",
                file=sys.stderr,
            )
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"repro cluster: {type(error).__name__}: {error}", file=sys.stderr)
        print(f"site logs are under {data_dir}", file=sys.stderr)
        return exit_code(error)
    document = json.dumps(result, indent=2, sort_keys=True)
    print(document)
    if args.json_out:
        Path(args.json_out).write_text(document + "\n")
        print(f"wrote report to {args.json_out}", file=sys.stderr)
    print(f"site logs are under {data_dir}", file=sys.stderr)
    return EXIT_OK


def _cmd_soak(args: argparse.Namespace) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.errors import EXIT_OK, EXIT_VIOLATION, exit_code
    from repro.live.soak import SoakConfig, run_soak

    data_dir = Path(
        args.data_dir if args.data_dir else tempfile.mkdtemp(prefix="repro-soak-")
    )
    try:
        config = SoakConfig(
            data_dir=data_dir,
            spec_name=args.spec,
            n_sites=args.n_sites,
            txns=args.txns,
            batch=args.batch,
            concurrency=args.concurrency,
            profile=args.profile,
            seed=args.seed,
            hb_interval=args.hb_interval,
            suspect_after=args.suspect_after,
            requery_interval=args.requery_interval,
            timeout=args.timeout,
            fsync_delay_ms=args.fsync_delay_ms,
            codec=args.codec,
            presumption=args.presumption,
            ro_sites=_parse_ro(args.ro),
            loop=args.loop,
            trace_cap=args.trace_cap,
        )
        result = run_soak(config)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"repro soak: {type(error).__name__}: {error}", file=sys.stderr)
        print(f"site logs are under {data_dir}", file=sys.stderr)
        return exit_code(error)
    document = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    print(document)
    if args.json_out:
        Path(args.json_out).write_text(document + "\n")
        print(f"wrote soak report to {args.json_out}", file=sys.stderr)
    print(f"site logs are under {data_dir}", file=sys.stderr)
    if not result.ok:
        for violation in result.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return EXIT_VIOLATION
    return EXIT_OK


def _cmd_txn(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.errors import EXIT_OK, EXIT_VIOLATION, exit_code
    from repro.live import client

    try:
        if args.status:
            reply = asyncio.run(
                client.query_status(args.host, args.port, args.txn, timeout=args.timeout)
            )
        elif args.shutdown:
            asyncio.run(client.shutdown_site(args.host, args.port, timeout=args.timeout))
            print(f"site at {args.host}:{args.port} shutting down")
            return EXIT_OK
        else:
            reply = asyncio.run(
                client.begin_txn(
                    args.host,
                    args.port,
                    args.txn,
                    wait=not args.no_wait,
                    timeout=args.timeout,
                )
            )
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"repro txn: {type(error).__name__}: {error}", file=sys.stderr)
        return exit_code(error)
    print(json.dumps(reply, indent=2, sort_keys=True))
    if reply.get("t") == "decided" and reply.get("outcome") == "abort":
        return EXIT_VIOLATION
    return EXIT_OK


def _parse_crash(text: str) -> CrashAt:
    """Parse ``SITE@TIME[@RESTART]`` into a :class:`CrashAt`."""
    parts = text.split("@")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"crash spec {text!r} must look like SITE@TIME or SITE@TIME@RESTART"
        )
    site = SiteId(int(parts[0]))
    at = float(parts[1])
    restart = float(parts[2]) if len(parts) == 3 else None
    return CrashAt(site=site, at=at, restart_at=restart)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = catalog.build(args.protocol, args.n_sites)
    votes = {SiteId(site): Vote.NO for site in args.no_vote}
    run = CommitRun(
        spec,
        seed=args.seed,
        vote_policy=FixedVotes(votes),
        crashes=args.crash,
        termination_mode=args.termination,
    ).execute()
    if args.trace_out:
        count = run.trace.save(args.trace_out)
        print(f"wrote {count} trace entries to {args.trace_out}")
    if args.trace:
        print(run.trace.format_timeline())
        print()
    if args.swimlanes:
        from repro.viz import render_run

        print(render_run(run))
        print()
    if args.audit:
        from repro.analysis.conformance import audit_run

        findings = audit_run(run, spec)
        if findings:
            print("CONFORMANCE FINDINGS:")
            for finding in findings:
                print(f"  {finding}")
            return 1
        print("conformance audit: clean")
    print(f"protocol : {run.protocol}")
    print(f"duration : {run.duration:g}")
    print(f"messages : {run.messages_sent}")
    print(f"atomic   : {'yes' if run.atomic else 'NO — VIOLATION'}")
    for site, report in sorted(run.reports.items()):
        status = report.outcome.value
        if report.blocked:
            status += " (BLOCKED)"
        via = f" via {report.via}" if report.via else ""
        down = "" if report.alive else " [down]"
        print(f"  site {site}: {status}{via}{down}")
    return 0 if run.atomic else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.spans import SpanIndex
    from repro.sim.tracing import TraceLog

    trace = TraceLog.load(args.file)
    if args.span is not None:
        span = SpanIndex.from_trace(trace).span(args.span)
        if span is None:
            print(f"no message with id {args.span} in {args.file}")
            return 1
        print(span.describe())
        for entry in (span.send_entry, span.end_entry):
            if entry is not None:
                print(f"  {entry.format()}")
        return 0
    entries = trace.select(category=args.category, site=args.site)
    shown = entries if args.limit is None else entries[: args.limit]
    for entry in shown:
        print(entry.format())
    print(
        f"-- {len(shown)} shown / {len(entries)} matching / "
        f"{len(trace)} total entries"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.metrics.collector import StatSeries
    from repro.metrics.registry import MetricsRegistry, observe_trace
    from repro.metrics.tables import Table
    from repro.sim.spans import SpanIndex
    from repro.sim.tracing import TraceLog

    trace = TraceLog.load(args.file)
    registry = MetricsRegistry()
    observe_trace(registry, trace)
    index = SpanIndex.from_trace(trace)

    messages = Table(["metric", "value"], title=f"messages ({args.file})")
    messages.add_row("sent", registry.counter("messages_sent_total"))
    messages.add_row("delivered", registry.counter("messages_delivered_total"))
    messages.add_row("dropped", registry.counter("messages_dropped_total"))
    messages.add_row("in flight at end", len(index.inflight()))
    latencies = StatSeries(index.latencies())
    if len(latencies):
        messages.add_row("delivery latency p50", latencies.percentile(50))
        messages.add_row("delivery latency p99", latencies.percentile(99))
    print(messages.render())

    phase_series: dict[str, StatSeries] = {}
    for entry in trace.select(category="phase.exit"):
        phase = entry.data.get("phase")
        elapsed = entry.data.get("elapsed")
        if phase is None or elapsed is None:
            continue
        phase_series.setdefault(str(phase), StatSeries()).add(float(elapsed))
    phases = Table(
        ["phase", "n", "mean", "p50", "p90", "p99", "max"],
        title="phase latency (time spent per phase occupancy)",
    )
    for phase, series in sorted(phase_series.items()):
        phases.add_row(
            phase,
            len(series),
            series.mean,
            series.percentile(50),
            series.percentile(90),
            series.percentile(99),
            series.maximum,
        )
    print()
    print(phases.render())

    decisions = Table(
        ["site", "outcome", "via", "decided at"], title="decisions"
    )
    decision_times = StatSeries()
    outcomes: set[str] = set()
    for entry in trace.select(category="txn.decided"):
        outcome = str(entry.data.get("outcome", "?"))
        outcomes.add(outcome)
        decisions.add_row(
            entry.site if entry.site is not None else "-",
            outcome,
            entry.data.get("via", "?"),
            entry.time,
        )
        decision_times.add(entry.time)
    print()
    print(decisions.render())
    print()
    if outcomes:
        verdict = "/".join(sorted(outcomes))
        print(
            f"decision outcome : {verdict}"
            + ("  (MIXED — atomicity violation!)" if len(outcomes) > 1 else "")
        )
        print(
            "decision latency : "
            f"p50={decision_times.percentile(50):g} "
            f"p99={decision_times.percentile(99):g} "
            f"max={decision_times.maximum:g}"
        )
    else:
        print("decision outcome : none recorded (undecided or blocked)")
    blocked = registry.counter("blocked_sites_total")
    if blocked:
        print(f"blocking events  : {blocked}")
    return 0


def _cmd_stitch(args: argparse.Namespace) -> int:
    from repro.errors import EXIT_OK, EXIT_VIOLATION, exit_code
    from repro.live.files import atomic_write_json, atomic_write_text
    from repro.live.stitch import stitch_data_dir

    try:
        result = stitch_data_dir(args.data_dir, canonical=args.canonical)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"repro stitch: {type(error).__name__}: {error}", file=sys.stderr)
        return exit_code(error)
    report = result.to_dict()
    if args.out:
        atomic_write_text(args.out, result.trace.to_jsonl())
        print(f"wrote {report['entries']} stitched entries to {args.out}")
    if args.json_out:
        atomic_write_json(args.json_out, report)
        print(f"wrote stitch report to {args.json_out}", file=sys.stderr)
    for site, stats in sorted(result.sites.items()):
        torn = (
            f", {stats['malformed']} torn line(s) skipped"
            if stats["malformed"]
            else ""
        )
        print(f"site {site}: {stats['entries']} entries{torn}")
    print(
        f"stitched {report['entries']} entries"
        f"{' (canonical)' if result.canonical else ''}: "
        f"{len(result.orphan_spans)} orphan span(s), "
        f"{len(result.orphan_parents)} orphan parent(s), "
        f"{result.inflight} in flight, "
        f"{result.cycles_broken} cycle(s) broken"
    )
    dirty = result.orphan_spans or result.orphan_parents or result.cycles_broken
    if args.strict and dirty:
        print("stitch: orphaned spans present (--strict)", file=sys.stderr)
        return EXIT_VIOLATION
    return EXIT_OK


def _cmd_audit(args: argparse.Namespace) -> int:
    import time

    from repro.errors import EXIT_OK, EXIT_VIOLATION, exit_code
    from repro.live.audit import audit_data_dir
    from repro.live.files import atomic_write_json

    deadline = time.monotonic() + args.watch if args.watch else None
    try:
        while True:
            report = audit_data_dir(
                args.data_dir, include_traces=not args.no_traces
            )
            if not report.ok():
                break  # Stop watching the moment an invariant breaks.
            if deadline is None or time.monotonic() >= deadline:
                break
            time.sleep(args.interval)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"repro audit: {type(error).__name__}: {error}", file=sys.stderr)
        return exit_code(error)
    if args.json_out:
        atomic_write_json(args.json_out, report.to_dict())
        print(f"wrote audit report to {args.json_out}", file=sys.stderr)
    for note in report.notes:
        print(f"note: {note}")
    for violation in report.violations:
        print(f"VIOLATION: {violation}")
    verdict = "clean" if report.ok() else f"{len(report.violations)} VIOLATION(S)"
    print(
        f"audited {len(report.sites)} site log(s), {report.txns} txn(s), "
        f"{report.decisions} decision record(s): {verdict}"
    )
    return EXIT_OK if report.ok() else EXIT_VIOLATION


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nonblocking commit protocols (Skeen, SIGMOD 1981)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list protocols and experiments").set_defaults(
        func=_cmd_list
    )

    show = sub.add_parser("show", help="render a protocol's automata")
    show.add_argument("protocol", choices=catalog.protocol_names())
    show.add_argument("n_sites", type=int)
    show.set_defaults(func=_cmd_show)

    analyze = sub.add_parser("analyze", help="run the nonblocking theorem")
    analyze.add_argument("protocol", choices=catalog.protocol_names())
    analyze.add_argument("n_sites", type=int)
    analyze.set_defaults(func=_cmd_analyze)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("experiment_id", help="F1..Q6 or 'all'")
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan multiple experiments across worker processes",
    )
    experiment.set_defaults(func=_cmd_experiment)

    sweep = sub.add_parser(
        "sweep",
        help="run experiment sweeps across worker processes (see docs/PARALLEL.md)",
    )
    sweep.add_argument(
        "experiment_ids", nargs="+", metavar="EXPERIMENT", help="ids or 'all'"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial reference path)",
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        dest="cache_dir",
        help="artifact cache: completed tasks are skipped on re-sweeps",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        dest="task_timeout",
        metavar="SECONDS",
        help="fail fast if a worker task hangs longer than this",
    )
    sweep.add_argument(
        "--trace-out",
        metavar="FILE",
        dest="trace_out",
        help="write the merged JSONL trace (disjoint msg_id spans)",
    )
    sweep.add_argument(
        "--metrics-out",
        metavar="FILE",
        dest="metrics_out",
        help="write the merged metrics registry as JSON",
    )
    sweep.add_argument(
        "--json",
        metavar="FILE",
        dest="json_out",
        help="write the machine-readable sweep sidecar",
    )
    sweep.set_defaults(func=_cmd_sweep)

    explore = sub.add_parser(
        "explore",
        help="systematically explore schedules and fault injections "
        "(see docs/EXPLORATION.md)",
    )
    explore.add_argument(
        "--protocol", required=True, choices=catalog.protocol_names()
    )
    explore.add_argument(
        "--sites", type=int, required=True, dest="n_sites", metavar="N"
    )
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument(
        "--budget",
        type=int,
        default=1000,
        help="maximum schedules to execute across all shards",
    )
    explore.add_argument(
        "--depth",
        type=int,
        default=40,
        help="leading decisions eligible for branching",
    )
    explore.add_argument(
        "--max-branch",
        type=int,
        default=3,
        dest="max_branch",
        help="arity cap on event-ordering choice points",
    )
    explore.add_argument(
        "--crashes",
        type=int,
        default=1,
        help="crash injections offered per schedule",
    )
    explore.add_argument(
        "--partitions",
        action="store_true",
        help="also offer a network-partition decision point",
    )
    explore.add_argument(
        "--mutant",
        default=None,
        help="execute a registered runtime mutant (self-test mode)",
    )
    explore.add_argument(
        "--mode",
        choices=("dfs", "random"),
        default="dfs",
        help="systematic bounded DFS or seeded-random schedules",
    )
    explore.add_argument(
        "--termination",
        choices=TERMINATION_MODES,
        default="standard",
        help="termination protocol variant",
    )
    explore.add_argument(
        "--shards",
        type=int,
        default=4,
        help="logical frontier shards (fixed by config, not workers)",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; output is byte-identical for any value",
    )
    explore.add_argument(
        "--cache-dir",
        metavar="DIR",
        dest="cache_dir",
        help="sweep artifact cache for shard results",
    )
    explore.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        dest="task_timeout",
        metavar="SECONDS",
        help="fail fast if a shard task hangs longer than this",
    )
    explore.add_argument(
        "--artifacts-dir",
        metavar="DIR",
        dest="artifacts_dir",
        help="write one replay artifact per shrunk violation",
    )
    explore.add_argument(
        "--json",
        metavar="FILE",
        dest="json_out",
        help="write the machine-readable exploration document",
    )
    explore.set_defaults(func=_cmd_explore)

    replay = sub.add_parser(
        "replay", help="re-execute saved replay artifacts exactly"
    )
    replay.add_argument(
        "files", nargs="+", metavar="ARTIFACT", help="replay artifact JSON"
    )
    replay.add_argument(
        "--verbose",
        action="store_true",
        help="print every reproduced violation",
    )
    replay.set_defaults(func=_cmd_replay)

    campaign = sub.add_parser(
        "campaign", help="run a randomized failure-injection campaign"
    )
    campaign.add_argument("protocol", choices=catalog.protocol_names())
    campaign.add_argument("n_sites", type=int)
    campaign.add_argument("--count", type=int, default=50)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--p-no", type=float, default=0.1, dest="p_no")
    campaign.add_argument("--p-crash", type=float, default=0.3, dest="p_crash")
    campaign.add_argument(
        "--save", metavar="FILE", help="write the campaign as JSON"
    )
    campaign.add_argument(
        "--replay", metavar="FILE", help="replay a saved campaign instead"
    )
    campaign.set_defaults(func=_cmd_campaign)

    run = sub.add_parser("run", help="simulate one transaction")
    run.add_argument("protocol", choices=catalog.protocol_names())
    run.add_argument("n_sites", type=int)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        default=[],
        metavar="SITE@TIME[@RESTART]",
        help="crash a site (repeatable)",
    )
    run.add_argument(
        "--no-vote",
        type=int,
        action="append",
        default=[],
        metavar="SITE",
        help="make a site vote no (repeatable)",
    )
    run.add_argument("--trace", action="store_true", help="print the timeline")
    run.add_argument(
        "--trace-out",
        metavar="FILE",
        dest="trace_out",
        help="dump the run's trace as JSONL for `trace` / `stats`",
    )
    run.add_argument(
        "--swimlanes",
        action="store_true",
        help="print per-site swimlanes of the run",
    )
    run.add_argument(
        "--termination",
        choices=TERMINATION_MODES,
        default="standard",
        help="termination protocol variant",
    )
    run.add_argument(
        "--audit",
        action="store_true",
        help="verify the execution against the formal model",
    )
    run.set_defaults(func=_cmd_run)

    trace = sub.add_parser("trace", help="inspect a saved JSONL trace")
    trace.add_argument("file", help="trace file written by run --trace-out")
    trace.add_argument(
        "--category",
        metavar="PREFIX",
        help="exact category, or a prefix ending in '.' (e.g. net.)",
    )
    trace.add_argument("--site", type=int, help="only this site's entries")
    trace.add_argument(
        "--span",
        type=int,
        metavar="MSGID",
        help="show one message's send->deliver span with latency",
    )
    trace.add_argument(
        "--limit", type=int, metavar="N", help="show at most N entries"
    )
    trace.set_defaults(func=_cmd_trace)

    stitch = sub.add_parser(
        "stitch",
        help="merge per-site live traces into one causal cluster trace",
    )
    stitch.add_argument(
        "data_dir", help="live data directory holding site-*.trace.jsonl"
    )
    stitch.add_argument(
        "--out",
        metavar="FILE",
        help="write the stitched JSONL trace (readable by repro trace/stats)",
    )
    stitch.add_argument(
        "--canonical",
        action="store_true",
        help="byte-stable output: strip volatile fields, remap span ids, "
        "keep only deterministic categories",
    )
    stitch.add_argument(
        "--json",
        metavar="FILE",
        dest="json_out",
        help="write the machine-readable stitch report",
    )
    stitch.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on orphan spans/parents or causality cycles",
    )
    stitch.set_defaults(func=_cmd_stitch)

    audit = sub.add_parser(
        "audit",
        help="verify atomicity (AC1) and log-timeline invariants of a "
        "live cluster's durable state",
    )
    audit.add_argument(
        "data_dir", help="live data directory holding site-*.dtlog"
    )
    audit.add_argument(
        "--no-traces",
        action="store_true",
        dest="no_traces",
        help="skip the advisory trace cross-check (DT logs only)",
    )
    audit.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-audit continuously for this long (exits early on violation)",
    )
    audit.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="re-audit period in --watch mode",
    )
    audit.add_argument(
        "--json",
        metavar="FILE",
        dest="json_out",
        help="write the machine-readable audit report",
    )
    audit.set_defaults(func=_cmd_audit)

    stats = sub.add_parser("stats", help="summarize a saved JSONL trace")
    stats.add_argument("file", help="trace file written by run --trace-out")
    stats.set_defaults(func=_cmd_stats)

    serve = sub.add_parser(
        "serve", help="run one live commit site over TCP (spawned by `cluster`)"
    )
    serve.add_argument("--site", type=int, required=True)
    serve.add_argument(
        "--spec", required=True, choices=catalog.protocol_names()
    )
    serve.add_argument("--sites", type=int, required=True, dest="n_sites")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, required=True)
    serve.add_argument(
        "--peers",
        required=True,
        metavar="ID=HOST:PORT,...",
        help="addresses of every other site",
    )
    serve.add_argument("--data-dir", required=True, dest="data_dir")
    serve.add_argument(
        "--hb-interval", type=float, default=0.25, dest="hb_interval"
    )
    serve.add_argument(
        "--suspect-after", type=float, default=1.5, dest="suspect_after"
    )
    serve.add_argument(
        "--requery-interval", type=float, default=1.0, dest="requery_interval"
    )
    serve.add_argument(
        "--termination-mode",
        choices=TERMINATION_MODES,
        default="standard",
        dest="termination",
    )
    serve.add_argument("--vote", choices=("yes", "no"), default="yes")
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        dest="max_inflight",
        help="cap on concurrently hosted client transactions (backpressure)",
    )
    serve.add_argument(
        "--pause-after",
        metavar="KIND:N",
        dest="pause_after",
        help="freeze after the N-th protocol send of KIND (crash injection)",
    )
    serve.add_argument(
        "--chaos",
        metavar="FILE",
        help="chaos policy JSON (ChaosPolicy.save) shaping this site's "
        "inbound links, fsync latency, and clock skew",
    )
    serve.add_argument(
        "--codec",
        choices=("json", "bin"),
        default="json",
        help="wire codec for outgoing peer frames (negotiated per "
        "connection; json keeps tcpdump traffic readable)",
    )
    # No choices= on --presumption/--loop: unknown values must exit
    # EXIT_CONFIG via LiveConfigError, not argparse's usage error.
    serve.add_argument(
        "--presumption",
        default="none",
        help="commit presumption: none (force everything), abort "
        "(presumed abort), or commit (presumed commit)",
    )
    serve.add_argument(
        "--loop",
        default="asyncio",
        help="event loop implementation: asyncio or uvloop (if installed)",
    )
    serve.add_argument(
        "--ro",
        default="",
        metavar="ID,ID,...",
        help="site ids that participate read-only (one-phase exit)",
    )
    serve.add_argument(
        "--trace-cap",
        type=int,
        default=200_000,
        dest="trace_cap",
        metavar="N",
        help="cap on trace entries written per site (drops are counted "
        "and noted by the auditor)",
    )
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster", help="spawn a live loopback cluster and drive it"
    )
    cluster.add_argument(
        "--spec", default="3pc-central", choices=catalog.protocol_names()
    )
    cluster.add_argument("--sites", type=int, default=3, dest="n_sites")
    cluster.add_argument(
        "--data-dir",
        dest="data_dir",
        help="where site logs/traces go (default: a fresh temp dir)",
    )
    cluster.add_argument(
        "--scenario",
        choices=("kill-coordinator", "gray-failure"),
        help="run a failure scenario instead of a benchmark: kill -9 the "
        "coordinator, or a gray link that delivers heartbeats while "
        "dropping commit-phase frames (expects a split decision)",
    )
    cluster.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        dest="chaos_seed",
        help="seed for the gray-failure chaos policy",
    )
    cluster.add_argument(
        "--emit-artifact",
        metavar="FILE",
        dest="emit_artifact",
        help="after gray-failure, round-trip the split decision into an "
        "explorer replay artifact at FILE",
    )
    cluster.add_argument(
        "--bench",
        type=int,
        default=20,
        metavar="N",
        help="commit N transactions and report throughput/latency",
    )
    cluster.add_argument(
        "--concurrency",
        type=int,
        default=1,
        metavar="N",
        help="closed-loop benchmark clients driving the gateway (default 1)",
    )
    cluster.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        dest="max_inflight",
        help="per-site cap on concurrently hosted client transactions",
    )
    cluster.add_argument(
        "--json-out",
        metavar="FILE",
        dest="json_out",
        help="also write the JSON report to FILE",
    )
    cluster.add_argument(
        "--hb-interval", type=float, default=0.1, dest="hb_interval"
    )
    cluster.add_argument(
        "--suspect-after", type=float, default=0.6, dest="suspect_after"
    )
    cluster.add_argument(
        "--requery-interval", type=float, default=0.3, dest="requery_interval"
    )
    cluster.add_argument(
        "--termination-mode",
        choices=TERMINATION_MODES,
        default="standard",
        dest="termination",
    )
    cluster.add_argument("--timeout", type=float, default=30.0)
    cluster.add_argument(
        "--codec",
        choices=("json", "bin"),
        default="json",
        help="wire codec every site uses for peer frames",
    )
    cluster.add_argument(
        "--presumption",
        default="none",
        help="commit presumption every site runs under "
        "(none, abort, or commit)",
    )
    cluster.add_argument(
        "--loop",
        default="asyncio",
        help="event loop every site process runs (asyncio or uvloop)",
    )
    cluster.add_argument(
        "--ro",
        default="",
        metavar="ID,ID,...",
        help="site ids that participate read-only (one-phase exit)",
    )
    cluster.add_argument(
        "--trace-cap",
        type=int,
        dest="trace_cap",
        metavar="N",
        help="per-site trace entry cap (default: site default)",
    )
    cluster.set_defaults(func=_cmd_cluster)

    soak = sub.add_parser(
        "soak",
        help="sustained txn volume under chaos with continuous audits",
    )
    soak.add_argument(
        "--spec", default="3pc-central", choices=catalog.protocol_names()
    )
    soak.add_argument("--sites", type=int, default=3, dest="n_sites")
    soak.add_argument(
        "--data-dir",
        dest="data_dir",
        help="where site logs/traces go (default: a fresh temp dir)",
    )
    soak.add_argument(
        "--txns",
        type=int,
        default=200,
        help="total transactions to push through (default 200)",
    )
    soak.add_argument(
        "--batch",
        type=int,
        default=50,
        help="transactions per wave; the DT logs are audited between "
        "waves (default 50)",
    )
    soak.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="closed-loop clients per wave (default 4)",
    )
    soak.add_argument(
        "--profile",
        choices=("none", "wan", "disk", "combined"),
        default="combined",
        help="chaos profile: WAN latency, slow fsyncs, both, or neither",
    )
    soak.add_argument(
        "--seed", type=int, default=0, help="chaos seed (default 0)"
    )
    soak.add_argument(
        "--fsync-delay-ms",
        type=float,
        default=4.0,
        dest="fsync_delay_ms",
        help="injected fsync latency for disk profiles (default 4.0)",
    )
    soak.add_argument(
        "--hb-interval", type=float, default=0.1, dest="hb_interval"
    )
    soak.add_argument(
        "--suspect-after", type=float, default=0.6, dest="suspect_after"
    )
    soak.add_argument(
        "--requery-interval", type=float, default=0.3, dest="requery_interval"
    )
    soak.add_argument("--timeout", type=float, default=30.0)
    soak.add_argument(
        "--codec",
        choices=("json", "bin"),
        default="json",
        help="wire codec every site uses for peer frames",
    )
    soak.add_argument(
        "--presumption",
        default="none",
        help="commit presumption every site runs under "
        "(none, abort, or commit)",
    )
    soak.add_argument(
        "--loop",
        default="asyncio",
        help="event loop every site process runs (asyncio or uvloop)",
    )
    soak.add_argument(
        "--ro",
        default="",
        metavar="ID,ID,...",
        help="site ids that participate read-only (one-phase exit)",
    )
    soak.add_argument(
        "--trace-cap",
        type=int,
        dest="trace_cap",
        metavar="N",
        help="per-site trace entry cap (default: site default)",
    )
    soak.add_argument(
        "--json-out",
        metavar="FILE",
        dest="json_out",
        help="also write the JSON soak report to FILE",
    )
    soak.set_defaults(func=_cmd_soak)

    txn = sub.add_parser("txn", help="talk to a running live site")
    txn.add_argument("--host", default="127.0.0.1")
    txn.add_argument("--port", type=int, required=True)
    txn.add_argument("--txn", type=int, default=1)
    txn.add_argument(
        "--status", action="store_true", help="query instead of begin"
    )
    txn.add_argument(
        "--shutdown", action="store_true", help="ask the site to exit"
    )
    txn.add_argument(
        "--no-wait",
        action="store_true",
        dest="no_wait",
        help="do not wait for the gateway's decision",
    )
    txn.add_argument("--timeout", type=float, default=30.0)
    txn.set_defaults(func=_cmd_txn)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
