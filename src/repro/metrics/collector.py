"""Tiny metric primitives: counters and summary statistics.

Benchmarks accumulate measurements with these and render them through
:class:`repro.metrics.tables.Table`.  They are deliberately simple —
no external deps, deterministic output.
"""

from __future__ import annotations

import math
from typing import Iterable


class Counter:
    """A labelled tally: ``counter.add("blocked")``."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def add(self, label: str, amount: int = 1) -> None:
        """Increment ``label`` by ``amount``."""
        self._counts[label] = self._counts.get(label, 0) + amount

    def get(self, label: str) -> int:
        """Current tally for ``label`` (0 if never incremented)."""
        return self._counts.get(label, 0)

    @property
    def total(self) -> int:
        """Sum over all labels."""
        return sum(self._counts.values())

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all tallies, sorted by label."""
        return dict(sorted(self._counts.items()))

    def fraction(self, label: str) -> float:
        """Share of ``label`` in the total (0.0 when empty)."""
        total = self.total
        return self.get(label) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.as_dict()!r})"


class StatSeries:
    """Accumulates numeric observations and summarizes them."""

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._values: list[float] = list(values)

    def add(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        """Record several observations."""
        self._values.extend(values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        """All observations in insertion order."""
        return tuple(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return sum(self._values) / len(self._values) if self._values else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 for < 2 observations)."""
        if len(self._values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self._values) / len(self._values)
        return math.sqrt(variance)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, with *nearest-rank* semantics.

        The result is always one of the observed values: the smallest
        value v such that at least ``q`` percent of observations are
        <= v (rank ``ceil(q/100 * n)``).  Edge cases are explicit, not
        incidental:

        * ``q=0`` returns the minimum (the nearest-rank formula would
          yield rank 0; we define the 0th percentile as the smallest
          observation);
        * ``q=100`` returns the maximum;
        * with a single observation every ``q`` returns it;
        * duplicates are counted per-occurrence, as nearest-rank
          requires (e.g. p50 of ``[1, 1, 9]`` is 1).

        Returns 0.0 on an empty series.

        Raises:
            ValueError: If ``q`` is outside [0, 100].
        """
        if not self._values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._values)
        if q == 0:
            return ordered[0]
        rank = math.ceil(q / 100 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        """Mean/min/max/p50/p99 in one dict (handy for printing)."""
        return {
            "n": float(len(self._values)),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatSeries(n={len(self)}, mean={self.mean:.4f})"
