"""Labelled metrics registry: counters and fixed-bucket histograms.

The registry is the aggregation side of the observability layer (see
``docs/OBSERVABILITY.md``): traces record *what happened* in one run;
the registry rolls many runs up into per-protocol phase-latency,
decision-latency, message-count, and blocking-rate views.  It follows
the shape of Prometheus client metrics — names plus sorted label sets,
cumulative histogram buckets — but is deliberately dependency-free and
deterministic (sorted serialization, no wall-clock timestamps).

Typical use::

    registry = MetricsRegistry()
    for seed in range(100):
        run = CommitRun(spec, seed=seed, ...).execute()
        observe_run(registry, run)
    print(registry.to_json())
    rate = registry.ratio("runs_blocked", "runs_total", protocol=spec.name)
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Any, Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.runtime.harness import RunResult
    from repro.sim.tracing import TraceLog

#: Default latency buckets (virtual time units).  Commit phases take a
#: handful of message delays, so the grid is dense at the low end.
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 100.0, 250.0, 1000.0)

#: Wall-clock millisecond buckets for the live TCP runtime.  The
#: default grid above assumes virtual time units (one unit ≈ one
#: message delay); real commit latencies on loopback/LAN instead span
#: sub-millisecond transport hops to multi-second recovery waits, so
#: the live runtime's histograms (``commit_latency_ms`` and friends)
#: use this 1-2.5-5 decade ladder.  Pass it as the ``buckets`` argument
#: of :meth:`MetricsRegistry.observe` on first use of a series.
WALL_MS_BUCKETS = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

#: Label values rendered into metric keys: ``name{k=v,k2=v2}``.
LabelSet = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, Any]) -> LabelSet:
    """Normalize labels to a hashable, deterministically ordered key."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_key(name: str, labels: LabelSet) -> str:
    """Render ``name{k=v,...}`` (just ``name`` when unlabelled)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


def _parse_key(rendered: str) -> tuple[str, LabelSet]:
    """Invert :func:`_render_key`.

    Label keys and values must not contain ``{``, ``}``, ``,`` or
    ``=`` — true for every label this codebase emits (protocol names,
    phases, outcomes); :func:`_render_key` does not escape them.
    """
    if "{" not in rendered:
        return rendered, ()
    name, _, rest = rendered.partition("{")
    inner = rest.rstrip("}")
    if not inner:
        return name, ()
    labels = tuple(
        (key, value)
        for key, _, value in (pair.partition("=") for pair in inner.split(","))
    )
    return name, labels


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus-style).

    Args:
        buckets: Ascending upper bounds of the finite buckets; one
            overflow bucket (+Inf) is always appended.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Per-bucket (upper bound, count) pairs, +Inf last."""
        pairs: list[tuple[float, int]] = list(zip(self.bounds, self._counts))
        pairs.append((math.inf, self._counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-th percentile.

        A bucketed estimate (resolution limited by the grid): the
        smallest bucket bound b such that at least ``q`` percent of
        observations are <= b.  Returns ``inf`` when the quantile falls
        in the overflow bucket, 0.0 on an empty histogram.

        Raises:
            ValueError: If ``q`` is outside [0, 100].
        """
        if not 0 <= q <= 100:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q / 100 * self.count))
        cumulative = 0
        for bound, count in self.bucket_counts():
            cumulative += count
            if cumulative >= target:
                return bound
        return math.inf  # pragma: no cover - unreachable, counts sum to count

    def to_dict(self) -> dict[str, Any]:
        """Deterministic snapshot: count, sum, cumulative buckets."""
        cumulative = 0
        buckets: dict[str, int] = {}
        for bound, count in self.bucket_counts():
            cumulative += count
            label = "+Inf" if math.isinf(bound) else f"{bound:g}"
            buckets[label] = cumulative
        return {"count": self.count, "sum": self.sum, "buckets": buckets}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from a :meth:`to_dict` snapshot.

        The cumulative bucket counts are de-cumulated back into
        per-bucket counts; ``Histogram.from_dict(h.to_dict())`` is
        observationally identical to ``h``.
        """
        cumulative = {
            (math.inf if label == "+Inf" else float(label)): int(count)
            for label, count in data["buckets"].items()
        }
        bounds = tuple(sorted(b for b in cumulative if not math.isinf(b)))
        histogram = cls(bounds)
        previous = 0
        for index, bound in enumerate(bounds):
            histogram._counts[index] = cumulative[bound] - previous
            previous = cumulative[bound]
        histogram._counts[-1] = cumulative.get(math.inf, previous) - previous
        histogram.count = int(data["count"])
        histogram.sum = float(data["sum"])
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self.count += other.count
        self.sum += other.sum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(n={self.count}, mean={self.mean:.4f})"


class MetricsRegistry:
    """Named, labelled counters, gauges, and histograms.

    Counters only go up, gauges are set to the current value of
    something (in-flight transactions, queue depths), histograms bucket
    observations.  Export is deterministic throughout (sorted keys);
    snapshots round-trip via :meth:`to_dict` / :meth:`from_dict`.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelSet], int] = {}
        self._gauges: dict[tuple[str, LabelSet], float] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Increment the counter ``name{labels}`` by ``amount``."""
        key = (name, _labels_key(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to its current value."""
        self._gauges[(name, _labels_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> None:
        """Record ``value`` in the histogram ``name{labels}``.

        ``buckets`` configures the grid on first use of a series and is
        ignored afterwards (bounds are fixed for a series' lifetime).
        """
        key = (name, _labels_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
            self._histograms[key] = histogram
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get((name, _labels_key(labels)), 0)

    def gauge(self, name: str, **labels: Any) -> float:
        """Current value of a gauge (0.0 if never set)."""
        return self._gauges.get((name, _labels_key(labels)), 0.0)

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        """The histogram for this series, or ``None``."""
        return self._histograms.get((name, _labels_key(labels)))

    def ratio(self, numerator: str, denominator: str, **labels: Any) -> float:
        """Counter ratio, e.g. blocking rate = blocked runs / runs (0.0 safe)."""
        denom = self.counter(denominator, **labels)
        return self.counter(numerator, **labels) / denom if denom else 0.0

    def series(self) -> list[str]:
        """All rendered series keys, sorted (counters, gauges, histograms)."""
        counters = sorted(_render_key(*key) for key in self._counters)
        gauges = sorted(_render_key(*key) for key in self._gauges)
        histograms = sorted(_render_key(*key) for key in self._histograms)
        return counters + gauges + histograms

    # ------------------------------------------------------------------
    # Aggregation & export
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (cross-shard rollup).

        Counters and histograms add; gauges are point-in-time values
        with no meaningful sum, so the *other* registry's value wins
        (last write) — merge shards in observation order.
        """
        for (name, labels), value in other._counters.items():
            key = (name, labels)
            self._counters[key] = self._counters.get(key, 0) + value
        for (name, labels), value in other._gauges.items():
            self._gauges[(name, labels)] = value
        for (name, labels), histogram in other._histograms.items():
            key = (name, labels)
            mine = self._histograms.get(key)
            if mine is None:
                mine = Histogram(histogram.bounds)
                self._histograms[key] = mine
            mine.merge(histogram)

    def to_dict(self) -> dict[str, Any]:
        """Deterministic nested snapshot: sorted keys throughout.

        The ``gauges`` key appears only when at least one gauge was
        set, so snapshots from gauge-free registries (the simulator,
        the sweep runner) are byte-identical to earlier versions.
        """
        snapshot: dict[str, Any] = {
            "counters": {
                _render_key(name, labels): value
                for (name, labels), value in sorted(self._counters.items())
            },
            "histograms": {
                _render_key(name, labels): histogram.to_dict()
                for (name, labels), histogram in sorted(self._histograms.items())
            },
        }
        if self._gauges:
            snapshot["gauges"] = {
                _render_key(name, labels): value
                for (name, labels), value in sorted(self._gauges.items())
            }
        return snapshot

    @classmethod
    def from_dict(cls, snapshot: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot.

        The inverse that makes snapshots a real interchange format:
        sweep workers and the artifact cache ship registries as plain
        JSON, and the merger folds them back with :meth:`merge`.
        Rendered series keys are parsed with the (unescaped) label
        grammar of :func:`_render_key` — see :func:`_parse_key`.
        """
        registry = cls()
        for rendered, value in snapshot.get("counters", {}).items():
            name, labels = _parse_key(rendered)
            registry._counters[(name, labels)] = int(value)
        for rendered, value in snapshot.get("gauges", {}).items():
            name, labels = _parse_key(rendered)
            registry._gauges[(name, labels)] = float(value)
        for rendered, data in snapshot.get("histograms", {}).items():
            name, labels = _parse_key(rendered)
            registry._histograms[(name, labels)] = Histogram.from_dict(data)
        return registry

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )


# ----------------------------------------------------------------------
# Rollup helpers: trace / run -> registry
# ----------------------------------------------------------------------


def observe_trace(
    registry: MetricsRegistry,
    trace: "TraceLog",
    protocol: str = "",
) -> None:
    """Roll one trace's observability events into ``registry``.

    Emits, labelled with ``protocol`` (when given):

    * ``messages_{sent,delivered,dropped}_total`` counters from the
      ``net.*`` events (partition drops count as drops);
    * ``message_latency`` histogram over delivered send→deliver spans;
    * ``phase_latency{phase=...}`` histograms from ``phase.exit``;
    * ``decisions_total{outcome=...,via=...}`` counters and a
      ``decision_latency`` histogram from ``txn.decided``;
    * ``blocked_sites_total`` from termination blocking events.
    """
    labels = {"protocol": protocol} if protocol else {}
    for entry in trace:
        category = entry.category
        if category == "net.send":
            registry.inc("messages_sent_total", **labels)
        elif category == "net.deliver":
            registry.inc("messages_delivered_total", **labels)
            sent_at = entry.data.get("sent_at")
            if sent_at is not None:
                registry.observe(
                    "message_latency", entry.time - float(sent_at), **labels
                )
        elif category in ("net.drop", "net.partition_drop"):
            registry.inc("messages_dropped_total", **labels)
        elif category == "phase.exit":
            phase = entry.data.get("phase")
            elapsed = entry.data.get("elapsed")
            if phase is not None and elapsed is not None:
                registry.observe(
                    "phase_latency", float(elapsed), phase=phase, **labels
                )
        elif category == "txn.decided":
            registry.inc(
                "decisions_total",
                outcome=entry.data.get("outcome", "?"),
                via=entry.data.get("via", "?"),
                **labels,
            )
            registry.observe("decision_latency", entry.time, **labels)
        elif category in ("term.blocked", "term.no_quorum"):
            registry.inc("blocked_sites_total", **labels)


def observe_run(registry: MetricsRegistry, run: "RunResult") -> None:
    """Roll one :class:`~repro.runtime.harness.RunResult` into ``registry``.

    Adds run-level counters — ``runs_total``, ``runs_blocked``,
    ``runs_violation``, per-outcome ``run_outcomes_total`` — plus the
    full per-event rollup of :func:`observe_trace`, all labelled with
    the run's protocol.  Blocking rate over a campaign is then
    ``registry.ratio("runs_blocked", "runs_total", protocol=...)``.
    """
    protocol = run.protocol
    registry.inc("runs_total", protocol=protocol)
    registry.observe(
        "run_duration", run.duration, protocol=protocol
    )
    registry.observe(
        "messages_per_run", float(run.messages_sent), protocol=protocol
    )
    if run.blocked_sites:
        registry.inc("runs_blocked", protocol=protocol)
    if not run.atomic:
        registry.inc("runs_violation", protocol=protocol)
    decided = sorted(outcome.value for outcome in run.decided_outcomes())
    registry.inc(
        "run_outcomes_total",
        outcome="/".join(decided) if decided else "undecided",
        protocol=protocol,
    )
    observe_trace(registry, run.trace, protocol=protocol)


def json_sidecar(result: Any) -> str:
    """Render an experiment result as a machine-readable JSON document.

    ``result`` is duck-typed against
    :class:`~repro.experiments.base.ExperimentResult` (experiment_id,
    title, data, notes).  Output is deterministic (sorted keys), so
    sidecars diff cleanly across PRs and the perf trajectory of each
    benchmark can be tracked mechanically.
    """
    from repro.sim.tracing import _json_safe

    document = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "data": _json_safe(result.data),
        "notes": list(result.notes),
    }
    return json.dumps(document, indent=2, sort_keys=True)
