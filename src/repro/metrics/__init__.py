"""Result aggregation and table rendering for the experiment harness."""

from repro.metrics.collector import Counter, StatSeries
from repro.metrics.registry import (
    WALL_MS_BUCKETS,
    Histogram,
    MetricsRegistry,
    json_sidecar,
    observe_run,
    observe_trace,
)
from repro.metrics.summary import CampaignSummary, summarize_runs
from repro.metrics.tables import Table

__all__ = [
    "CampaignSummary",
    "Counter",
    "WALL_MS_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "StatSeries",
    "Table",
    "json_sidecar",
    "observe_run",
    "observe_trace",
    "summarize_runs",
]
