"""Result aggregation and table rendering for the experiment harness."""

from repro.metrics.collector import Counter, StatSeries
from repro.metrics.summary import CampaignSummary, summarize_runs
from repro.metrics.tables import Table

__all__ = [
    "CampaignSummary",
    "Counter",
    "StatSeries",
    "Table",
    "summarize_runs",
]
