"""Campaign summaries: aggregate statistics over many runs.

Failure-injection campaigns (Q1, A4, the property suites) produce long
lists of :class:`~repro.runtime.harness.RunResult`; this module distils
them into one :class:`CampaignSummary` — outcome mix, blocking rate,
decision-latency percentiles, message totals, and the all-important
atomicity-violation count.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.metrics.collector import Counter, StatSeries
from repro.metrics.tables import Table
from repro.runtime.harness import RunResult
from repro.types import Outcome


@dataclasses.dataclass
class CampaignSummary:
    """Aggregate view of one campaign.

    Attributes:
        runs: Number of runs aggregated.
        outcomes: Tally of global outcomes (``commit`` / ``abort`` /
            ``mixed-undecided``; mixed-final would be a violation).
        blocked_runs: Runs where at least one operational site ended
            blocked.
        violations: Runs that broke atomicity (must be 0 for every
            in-model protocol).
        crashed_sites_total: Site-crash count across the campaign.
        decision_latency: Per-site decision times of operational sites.
        messages: Messages sent per run.
    """

    runs: int = 0
    outcomes: Counter = dataclasses.field(default_factory=Counter)
    blocked_runs: int = 0
    violations: int = 0
    crashed_sites_total: int = 0
    decision_latency: StatSeries = dataclasses.field(default_factory=StatSeries)
    messages: StatSeries = dataclasses.field(default_factory=StatSeries)

    @property
    def blocked_fraction(self) -> float:
        """Share of runs with at least one blocked site."""
        return self.blocked_runs / self.runs if self.runs else 0.0

    def to_table(self, title: str = "campaign summary") -> Table:
        """Render the summary as a two-column table."""
        table = Table(["metric", "value"], title=title)
        table.add_row("runs", self.runs)
        for label, count in self.outcomes.as_dict().items():
            table.add_row(f"outcome: {label}", count)
        table.add_row("blocked runs", self.blocked_runs)
        table.add_row("blocked fraction", self.blocked_fraction)
        table.add_row("atomicity violations", self.violations)
        table.add_row("site crashes", self.crashed_sites_total)
        table.add_row("mean decision latency", self.decision_latency.mean)
        table.add_row("p99 decision latency", self.decision_latency.percentile(99))
        table.add_row("mean messages/run", self.messages.mean)
        return table


def summarize_runs(results: Iterable[RunResult]) -> CampaignSummary:
    """Aggregate a campaign's results into a :class:`CampaignSummary`."""
    summary = CampaignSummary()
    for run in results:
        summary.runs += 1
        decided = run.decided_outcomes()
        if len(decided) > 1:
            summary.violations += 1
            summary.outcomes.add("VIOLATION")
        elif decided == {Outcome.COMMIT}:
            summary.outcomes.add("commit")
        elif decided == {Outcome.ABORT}:
            summary.outcomes.add("abort")
        else:
            summary.outcomes.add("undecided")
        if run.blocked_sites:
            summary.blocked_runs += 1
        summary.crashed_sites_total += sum(
            1 for report in run.reports.values() if report.crashed
        )
        for report in run.reports.values():
            if report.alive and report.decided_at is not None:
                summary.decision_latency.add(report.decided_at)
        summary.messages.add(float(run.messages_sent))
    return summary
