"""ASCII table rendering for benchmark output.

Every benchmark prints the rows it regenerates through :class:`Table`,
so EXPERIMENTS.md and the bench logs share one format.
"""

from __future__ import annotations

from typing import Any, Sequence


class Table:
    """A fixed-column ASCII table.

    Args:
        columns: Header labels; every row must match this arity.
        title: Optional caption printed above the table.
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.columns = list(columns)
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row (cells are str()-formatted; floats get 4sf).

        Raises:
            ValueError: On arity mismatch with the header.
        """
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self._rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    @property
    def rows(self) -> list[list[str]]:
        """Formatted rows so far."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
