"""Atomic file publication for live-site observability artifacts.

Metrics snapshots, stitched traces, and audit reports are read by
*other* processes — the cluster harness, ``repro audit``, external
scrapers — possibly at any instant, including mid-write.  POSIX
``rename(2)`` within one filesystem is atomic, so the publication
pattern is always: write the full content to a temporary sibling,
then ``os.replace`` it over the destination.  A reader sees either
the old complete file or the new complete file, never a torn one.

No fsync: these artifacts are advisory observability, not the DT log.
Page-cache contents survive ``kill -9`` (only an OS crash loses them,
which is outside this runtime's threat model), and an fsync per
snapshot was a measured cost on the decision hot path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text`` (tmp + ``os.replace``).

    The temporary file lives next to the destination (same directory,
    therefore same filesystem) so the final rename is atomic.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


def atomic_write_json(path: Union[str, Path], obj: Any) -> None:
    """Atomically publish ``obj`` as pretty, key-sorted JSON."""
    atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")
