"""The client side of the live cluster's wire protocol.

A client opens one TCP connection per request to any site (the
*gateway*), sends one frame, and reads one reply — the same protocol
``repro txn`` speaks from the command line and the cluster harness
speaks when orchestrating scenarios:

* ``begin`` — start a transaction at the gateway and (by default) wait
  for the gateway's own decision;
* ``status`` — ask one site for its local view of a transaction
  (state, outcome, blocked flag, boot count);
* ``shutdown`` — ask a site process to exit gracefully.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.errors import LiveTimeoutError, TransportError
from repro.live.wire import encode_frame, read_frame


async def request(
    host: str,
    port: int,
    frame: dict[str, Any],
    timeout: float = 10.0,
) -> dict[str, Any]:
    """Send one frame and await one reply on a fresh connection.

    Raises:
        TransportError: If the site is unreachable or closes early.
        LiveTimeoutError: If no reply arrives within ``timeout``.
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as error:
        raise TransportError(f"cannot reach site at {host}:{port}: {error}") from error
    try:
        writer.write(encode_frame(frame))
        await writer.drain()
        try:
            reply = await asyncio.wait_for(read_frame(reader), timeout)
        except asyncio.TimeoutError:
            raise LiveTimeoutError(
                f"no reply from {host}:{port} within {timeout:g}s "
                f"(request {frame.get('t')!r})"
            ) from None
        if reply is None:
            raise TransportError(f"{host}:{port} closed the connection early")
        if reply.get("t") == "error":
            raise TransportError(f"{host}:{port}: {reply.get('error')}")
        return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def begin_txn(
    host: str,
    port: int,
    txn_id: int,
    wait: bool = True,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """Start a transaction at the gateway site.

    With ``wait`` (default) the reply is the gateway's ``decided``
    frame (outcome, via, elapsed_ms); otherwise an immediate ``ok``.
    """
    return await request(
        host, port, {"t": "begin", "txn": txn_id, "wait": wait}, timeout=timeout
    )


async def query_status(
    host: str, port: int, txn_id: int, timeout: float = 5.0
) -> dict[str, Any]:
    """One site's local view of a transaction."""
    return await request(host, port, {"t": "status", "txn": txn_id}, timeout=timeout)


async def shutdown_site(host: str, port: int, timeout: float = 5.0) -> None:
    """Ask a site process to exit gracefully."""
    await request(host, port, {"t": "shutdown"}, timeout=timeout)


async def try_status(
    host: str, port: int, txn_id: int, timeout: float = 2.0
) -> Optional[dict[str, Any]]:
    """Like :func:`query_status` but ``None`` when the site is down."""
    try:
        return await query_status(host, port, txn_id, timeout=timeout)
    except (TransportError, LiveTimeoutError):
        return None
