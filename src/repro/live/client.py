"""The client side of the live cluster's wire protocol.

A client talks to any site (the *gateway*) in request/reply frames —
the same protocol ``repro txn`` speaks from the command line and the
cluster harness speaks when orchestrating scenarios:

* ``begin`` — start a transaction at the gateway and (by default) wait
  for the gateway's own decision;
* ``status`` — ask one site for its local view of a transaction
  (state, outcome, blocked flag, boot count);
* ``shutdown`` — ask a site process to exit gracefully.

The one-shot helpers (:func:`request`, :func:`begin_txn`, …) open a
fresh connection per request.  :class:`ClientSession` keeps one
connection open across many requests — the closed-loop benchmark
workers use it so TCP setup is not on the per-transaction path.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.errors import LiveTimeoutError, TransportError
from repro.live.transport import set_nodelay
from repro.live.wire import encode_frame, read_frame


async def request(
    host: str,
    port: int,
    frame: dict[str, Any],
    timeout: float = 10.0,
) -> dict[str, Any]:
    """Send one frame and await one reply on a fresh connection.

    Raises:
        TransportError: If the site is unreachable or closes early.
        LiveTimeoutError: If no reply arrives within ``timeout``.
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as error:
        raise TransportError(f"cannot reach site at {host}:{port}: {error}") from error
    set_nodelay(writer)
    try:
        writer.write(encode_frame(frame))
        await writer.drain()
        try:
            reply = await asyncio.wait_for(read_frame(reader), timeout)
        except asyncio.TimeoutError:
            raise LiveTimeoutError(
                f"no reply from {host}:{port} within {timeout:g}s "
                f"(request {frame.get('t')!r})"
            ) from None
        if reply is None:
            raise TransportError(f"{host}:{port} closed the connection early")
        if reply.get("t") == "error":
            raise TransportError(f"{host}:{port}: {reply.get('error')}")
        return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


class ClientSession:
    """One persistent connection to a site, serving sequential requests.

    One request is in flight per session at a time (the server replies
    in order); run many sessions for client-side concurrency.  Usable
    as an async context manager.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ClientSession":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
            set_nodelay(self._writer)
        except OSError as error:
            raise TransportError(
                f"cannot reach site at {self.host}:{self.port}: {error}"
            ) from error

    async def close(self) -> None:
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
        self._reader = self._writer = None

    async def request(
        self, frame: dict[str, Any], timeout: float = 10.0
    ) -> dict[str, Any]:
        """Send one frame on the open connection and await one reply."""
        if self._reader is None or self._writer is None:
            raise TransportError("session is not connected")
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        try:
            # asyncio.timeout over wait_for: no wrapper Task per request
            # (a measurable cost for the closed-loop benchmark workers).
            async with asyncio.timeout(timeout):
                reply = await read_frame(self._reader)
        except TimeoutError:
            raise LiveTimeoutError(
                f"no reply from {self.host}:{self.port} within {timeout:g}s "
                f"(request {frame.get('t')!r})"
            ) from None
        if reply is None:
            raise TransportError(
                f"{self.host}:{self.port} closed the connection early"
            )
        if reply.get("t") == "error":
            raise TransportError(f"{self.host}:{self.port}: {reply.get('error')}")
        return reply

    async def begin_txn(
        self, txn_id: int, wait: bool = True, timeout: float = 10.0
    ) -> dict[str, Any]:
        """Start a transaction at the gateway (see :func:`begin_txn`)."""
        return await self.request(
            {"t": "begin", "txn": txn_id, "wait": wait}, timeout=timeout
        )


async def begin_txn(
    host: str,
    port: int,
    txn_id: int,
    wait: bool = True,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """Start a transaction at the gateway site.

    With ``wait`` (default) the reply is the gateway's ``decided``
    frame (outcome, via, elapsed_ms); otherwise an immediate ``ok``.
    """
    return await request(
        host, port, {"t": "begin", "txn": txn_id, "wait": wait}, timeout=timeout
    )


async def query_status(
    host: str, port: int, txn_id: int, timeout: float = 5.0
) -> dict[str, Any]:
    """One site's local view of a transaction."""
    return await request(host, port, {"t": "status", "txn": txn_id}, timeout=timeout)


async def shutdown_site(host: str, port: int, timeout: float = 5.0) -> None:
    """Ask a site process to exit gracefully."""
    await request(host, port, {"t": "shutdown"}, timeout=timeout)


async def try_status(
    host: str, port: int, txn_id: int, timeout: float = 2.0
) -> Optional[dict[str, Any]]:
    """Like :func:`query_status` but ``None`` when the site is down."""
    try:
        return await query_status(host, port, txn_id, timeout=timeout)
    except (TransportError, LiveTimeoutError):
        return None
