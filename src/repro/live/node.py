"""One live site process: the FSA runtime over TCP and a durable log.

:class:`LiveSite` is the deployment counterpart of the simulator's
:class:`~repro.runtime.site.CommitSite`.  The protocol components are
the *same objects* — :class:`~repro.runtime.engine.Engine`,
:class:`~repro.runtime.termination.TerminationController`,
:class:`~repro.runtime.recovery.RecoveryController` — bound to a
different substrate: asyncio TCP instead of the simulated network, a
fsynced file instead of the in-memory DT log, and wall-clock timers
instead of the event queue.  One process hosts many concurrent
transactions; :class:`LiveTxn` is the per-transaction
:class:`~repro.runtime.seam.ProtocolHost` the controllers see.

A site is also a **gateway**: a client ``begin`` frame makes it inject
the spec's external inputs — locally for its own automaton, via
``external`` frames for other sites' — so both central-site and
decentralized protocols start the same way.

Transactions are **concurrent**: Skeen's protocols impose no
cross-transaction ordering, so every client connection is served as
its own coroutine and frames for different transactions interleave
freely over the same peer links.  A backpressure semaphore
(``max_inflight``) bounds undecided client-begun transactions.  The
forced DT-log writes of all in-flight transactions share the store's
group-commit flusher (one fsync per batch), and a decision is
*published* — metrics, client reply, backpressure slot — only after
its record is durable, so group commit never weakens what a client
reply implies.

Restart semantics (the point of the whole exercise): at boot the site
replays its durable log.  Transactions with surviving records come
back as *recovered* hosts (``ever_crashed=True``) and immediately run
the paper's recovery protocol.  A frame for a transaction the log has
*no* records of, arriving at a restarted site, is handled by the
unilateral-abort rule — no vote record means the dead incarnation
provably never voted (votes are force-logged before any send), so
abort is always safe.

Deterministic crash injection: ``pause_after=("prepare", 2)`` freezes
the site right after its 2nd ``prepare`` send has been flushed to the
kernel — incoming frames and timers stop, a ``site-N.paused`` marker
appears, and the harness delivers the real ``kill -9``.  This pins the
crash to an exact protocol point (e.g. "coordinator dead after the
prepare broadcast, before any ack") without any sleep-based guessing.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import json
import os
import re
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import LiveConfigError
from repro.fsa.messages import EXTERNAL, Msg
from repro.live.chaos import ChaosPolicy, LinkChaos
from repro.live.clock import TimeoutClock, WallTimer
from repro.live.dtlog import DurableDTLog, SiteLogStore, delayed_fsync
from repro.live.files import atomic_write_json
from repro.live.transport import Transport
from repro.live.wire import (
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
    stamp_trace_context,
)
from repro.live.wire_bin import CODEC_JSON, CODECS
from repro.metrics import WALL_MS_BUCKETS, MetricsRegistry
from repro.protocols import build
from repro.runtime.decision import TerminationRule
from repro.runtime.messages import (
    OutcomeQuery,
    OutcomeReply,
    ProtoMsg,
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.runtime.engine import Engine
from repro.runtime.policies import FixedVotes
from repro.runtime.recovery import RecoveryController
from repro.runtime.termination import TerminationController
from repro.types import Outcome, SiteId, Vote

#: The selectable commit presumptions (see :class:`LiveConfig`).
PRESUMPTIONS = ("none", "abort", "commit")

#: The selectable event-loop implementations.
LOOPS = ("asyncio", "uvloop")

#: Minimum seconds between metrics-snapshot writes while transactions
#: are in flight.  Snapshots are advisory; serializing the registry per
#: decision was the measured throughput ceiling under concurrency, and
#: each atomic write costs ~1ms of rename alone.  Quiescence still
#: snapshots immediately, so an idle site's file is always current.
METRICS_WRITE_INTERVAL = 0.25

#: Printable ASCII with no quote or backslash — a string this matches
#: is its own JSON encoding (modulo the surrounding quotes), exactly as
#: ``json.dumps`` with its default ``ensure_ascii=True`` would emit it.
#: Anything else (escapes, control characters, non-ASCII) takes the
#: ``json.dumps`` fallback, so the fast trace path can never produce
#: different bytes than the old one.
_PLAIN_JSON_STR = re.compile(r"^[ !#-\[\]-~]*$").match
_dumps_str = json.dumps


@dataclasses.dataclass
class LiveConfig:
    """Everything one ``repro serve`` process needs to come up.

    Attributes:
        site: This site's id (1-based, per the paper's numbering).
        spec_name: Catalog protocol name (e.g. ``"3pc-central"``).
        n_sites: Participant count the spec is built for.
        host / port: This site's listening endpoint.
        peers: Peer id → (host, port) for every other site.
        data_dir: Directory for the DT log, markers, trace, metrics.
        hb_interval: Heartbeat period (seconds).
        suspect_after: Silence threshold before suspecting a peer.
        requery_interval: Recovery re-query period while in doubt.
        termination_mode: One of
            :data:`repro.runtime.termination.TERMINATION_MODES`.
        vote: This site's vote (``"yes"`` / ``"no"``).
        pause_after: Optional ``(kind, n)`` — freeze the site right
            after its n-th protocol send of ``kind`` (crash injection).
        max_inflight: Backpressure bound on concurrently undecided
            client-begun transactions at this gateway; further
            ``begin`` requests queue until a decision frees a slot.
        trace_max_entries: Bound on trace entries written to this
            site's trace file per process lifetime.  Past the bound
            new entries are discarded (keep-oldest: the boot and early
            protocol runs survive) and counted in the metrics snapshot
            so truncation is never silent.
        chaos: Optional path to a serialized
            :class:`~repro.live.chaos.ChaosPolicy`.  The site applies
            its own slice: inbound gray-link rules, its fsync delay,
            and its clock skew.
        codec: Wire codec for this site's *outgoing* peer frames
            (``"json"`` or ``"bin"``), negotiated per connection via
            the hello handshake — sites with different codecs
            interoperate.  Client traffic is always JSON.
        presumption: Commit presumption governing which DT-log records
            demand an fsync: ``"none"`` (every vote and decision is
            forced — the paper's baseline), ``"abort"`` (no votes and
            abort decisions go lazy; a missing record reads as abort),
            or ``"commit"`` (the coordinator forces a membership record
            before the ``xact`` fan-out and only its commit decision
            thereafter).  Must agree across the cluster.
        ro_sites: Sites taking the read-only one-phase exit (must agree
            across the cluster — every site builds the same spec).
        loop: Event-loop implementation: ``"asyncio"`` or ``"uvloop"``
            (the latter only if importable; checked at serve time).
    """

    site: SiteId
    spec_name: str
    n_sites: int
    port: int
    peers: dict[SiteId, tuple[str, int]]
    data_dir: Path
    host: str = "127.0.0.1"
    hb_interval: float = 0.25
    suspect_after: float = 1.5
    requery_interval: float = 1.0
    termination_mode: str = "standard"
    vote: str = "yes"
    pause_after: Optional[tuple[str, int]] = None
    max_inflight: int = 64
    trace_max_entries: int = 200_000
    chaos: Optional[Path] = None
    codec: str = CODEC_JSON
    presumption: str = "none"
    ro_sites: tuple[SiteId, ...] = ()
    loop: str = "asyncio"

    def __post_init__(self) -> None:
        self.site = SiteId(int(self.site))
        self.data_dir = Path(self.data_dir)
        if self.chaos is not None:
            self.chaos = Path(self.chaos)
        self.peers = {
            SiteId(int(peer)): (host, int(port))
            for peer, (host, port) in self.peers.items()
        }
        if self.vote not in ("yes", "no"):
            raise LiveConfigError(f"vote must be 'yes' or 'no', got {self.vote!r}")
        if self.codec not in CODECS:
            raise LiveConfigError(
                f"codec must be one of {', '.join(CODECS)}, got {self.codec!r}"
            )
        if self.presumption not in PRESUMPTIONS:
            raise LiveConfigError(
                f"presumption must be one of {', '.join(PRESUMPTIONS)}, "
                f"got {self.presumption!r}"
            )
        if self.loop not in LOOPS:
            raise LiveConfigError(
                f"loop must be one of {', '.join(LOOPS)}, got {self.loop!r}"
            )
        self.ro_sites = tuple(sorted(SiteId(int(s)) for s in self.ro_sites))
        for ro in self.ro_sites:
            if not 1 <= int(ro) <= self.n_sites:
                raise LiveConfigError(
                    f"read-only site {int(ro)} is not a participant "
                    f"(n_sites={self.n_sites})"
                )
        if self.trace_max_entries < 1:
            raise LiveConfigError(
                f"trace cap must be >= 1, got {self.trace_max_entries}"
            )
        if self.max_inflight < 1:
            raise LiveConfigError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        expected = set(range(1, self.n_sites + 1)) - {int(self.site)}
        if {int(p) for p in self.peers} != expected:
            raise LiveConfigError(
                f"site {self.site} of {self.n_sites} needs peers {sorted(expected)}, "
                f"got {sorted(int(p) for p in self.peers)}"
            )


def parse_pause_after(text: str) -> tuple[str, int]:
    """Parse a ``KIND:N`` crash-injection spec (e.g. ``prepare:2``).

    Raises:
        LiveConfigError: On a malformed spec.
    """
    kind, _, count = text.partition(":")
    if not kind or not count.isdigit() or int(count) < 1:
        raise LiveConfigError(
            f"pause-after must be KIND:N with N >= 1, got {text!r}"
        )
    return kind, int(count)


class _TransportView:
    """The :class:`~repro.runtime.seam.OperationalView` over a transport."""

    def __init__(self, transport: Transport) -> None:
        self._transport = transport

    def operational_sites(self) -> list[SiteId]:
        return self._transport.operational_sites()


class LiveTxn:
    """One transaction's :class:`~repro.runtime.seam.ProtocolHost`.

    Owns the per-transaction engine, durable log view, and controllers;
    delegates transport, clock, and tracing to the owning site process.

    Args:
        node: The owning :class:`LiveSite`.
        txn_id: The transaction id (allocated by the client/harness).
        crashed: Whether this host represents a transaction the
            previous incarnation of the site was running when it died
            (recovered from the durable log or inferred from a peer's
            query at a restarted site).
    """

    def __init__(self, node: "LiveSite", txn_id: int, crashed: bool = False) -> None:
        self.node = node
        self.txn_id = txn_id
        self.site = node.config.site
        self.spec = node.spec
        self.log = DurableDTLog(node.store, txn_id)
        self.ever_crashed = crashed
        self.known_failed: set[SiteId] = set(node.transport.suspected)
        self.network = node.view
        self.started_at = node.clock.now()
        self.blocked = False
        self.decided: Optional[tuple[Outcome, str]] = None
        #: Set once the decision record is durable and client waiters
        #: were resolved — the group-commit analogue of "decided".
        self.published = False
        #: Latency-stage timestamps, set only for client-begun
        #: transactions at their gateway (peers lack the queue view):
        #: begin request received / admitted past backpressure /
        #: engine decided / published (implicit: publication time).
        self.stage_begin: Optional[float] = None
        self.stage_admitted: Optional[float] = None
        self.decided_at: Optional[float] = None
        #: Per-stage commit-latency breakdown in ms, filled at
        #: publication; additive: their sum IS the reported latency.
        self.stages: Optional[dict[str, float]] = None
        self._timers: dict[str, WallTimer] = {}
        self.engine = Engine(
            automaton=self.spec.automaton(self.site),
            vote_policy=node.vote_policy,
            log=self.log,
            send=self._send_model,
            now=node.clock.now,
            on_final=self._on_final,
            on_trace=self.trace,
            presumption=node.config.presumption,
            membership=node.membership,
        )
        self.termination = TerminationController(
            self, node.rule, mode=node.config.termination_mode
        )
        self.recovery = RecoveryController(
            self,
            requery_interval=node.config.requery_interval,
            presumption=node.config.presumption,
        )

    # -- ProtocolHost surface -------------------------------------------

    @property
    def alive(self) -> bool:
        """The site is operational unless frozen by crash injection."""
        return not self.node.paused

    def send_payload(self, dst: SiteId, payload: Any) -> None:
        """Transmit a termination/recovery payload to a peer."""
        if not self.alive:
            return
        self.node.send_payload_frame(self.txn_id, dst, payload)

    def set_timer(
        self, key: str, delay: float, callback: Callable[[], None]
    ) -> WallTimer:
        """Arm (or re-arm) a named wall-clock timer."""
        self.cancel_timer(key)

        def fire() -> None:
            if not self.alive:
                return
            callback()

        timer = self.node.clock.call_later(delay, fire, label=f"txn{self.txn_id}.{key}")
        self._timers[key] = timer
        return timer

    def cancel_timer(self, key: str) -> bool:
        """Cancel the named timer if armed."""
        timer = self._timers.pop(key, None)
        if timer is None or timer.fired or timer.cancelled:
            return False
        timer.cancel()
        return True

    def cancel_all_timers(self) -> None:
        """Cancel every armed timer (site shutdown)."""
        for key in list(self._timers):
            self.cancel_timer(key)

    def now(self) -> float:
        """Wall-clock seconds since the site process started."""
        return self.node.clock.now()

    def trace(self, category: str, detail: str, **data: Any) -> None:
        """Record one trace entry, tagged with the transaction id."""
        data.setdefault("site", int(self.site))
        data.setdefault("txn", self.txn_id)
        self.node.trace(category, detail, **data)

    def operational_participants(self) -> list[SiteId]:
        """Participants this site believes operational (never-crashed).

        Read-only participants are excluded — they exited at phase 1
        and take no part in termination.
        """
        return sorted(
            site
            for site in self.spec.sites
            if site not in self.known_failed
            and site not in self.spec.read_only_sites
            and (site != self.site or self.alive)
        )

    def notify_blocked(self) -> None:
        """The termination protocol found no safe decision here."""
        self.blocked = True
        self.node.on_txn_blocked(self)

    # -- Engine plumbing ------------------------------------------------

    def _send_model(self, msg: Msg) -> None:
        self.node.send_proto(self.txn_id, msg)

    def _on_final(self, outcome: Outcome, via: str) -> None:
        self.blocked = False
        self.decided = (outcome, via)
        self.node.on_txn_decided(self, outcome, via)

    # -- Delivery (mirrors CommitSite.deliver) --------------------------

    def deliver_payload(self, src: SiteId, payload: Any) -> None:
        """Dispatch one decoded payload by family.

        The branch structure intentionally mirrors
        :meth:`repro.runtime.site.CommitSite.deliver` — including the
        rule that a recovered site drops commit-protocol messages and
        phase-1 termination orders (it resolves via recovery instead).
        """
        if not self.alive:
            return
        if isinstance(payload, ProtoMsg):
            if self.ever_crashed:
                return
            self.engine.receive(Msg(payload.kind, src, self.site))
        elif isinstance(payload, TermMoveTo):
            if not self.ever_crashed:
                self.termination.on_move_to(src, payload)
        elif isinstance(payload, TermAck):
            self.termination.on_ack(src, payload)
        elif isinstance(payload, TermDecision):
            self.termination.on_decision(src, payload)
        elif isinstance(payload, TermBlocked):
            self.termination.on_blocked(src, payload)
        elif isinstance(payload, TermStateQuery):
            if not self.ever_crashed:
                self.termination.on_state_query(src, payload)
        elif isinstance(payload, TermStateReply):
            self.termination.on_state_reply(src, payload)
        elif isinstance(payload, OutcomeQuery):
            self.recovery.on_query(src, payload)
        elif isinstance(payload, OutcomeReply):
            self.recovery.on_reply(src, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiveTxn(site={self.site}, txn={self.txn_id}, "
            f"state={self.engine.state!r})"
        )


class LiveSite:
    """One site process: transport + durable log + per-txn hosts."""

    def __init__(self, config: LiveConfig) -> None:
        self.config = config
        self.spec = build(config.spec_name, config.n_sites, ro_sites=config.ro_sites)
        self.rule = TerminationRule(self.spec)
        #: Voting-participant set the coordinator's engine force-logs
        #: as the presumed-commit membership record (empty elsewhere).
        self.membership: tuple[SiteId, ...] = ()
        if config.site == self.spec.coordinator:
            self.membership = tuple(
                site
                for site in self.spec.sites
                if site != config.site and site not in self.spec.read_only_sites
            )
        # The chaos policy (if any) is cluster-wide; this site applies
        # only its own slice of it.
        self.chaos_policy = (
            ChaosPolicy.load(config.chaos) if config.chaos is not None else None
        )
        skew = 0.0
        fsync_delay_ms = 0.0
        link_chaos: Optional[LinkChaos] = None
        if self.chaos_policy is not None:
            skew = self.chaos_policy.skew_s(int(config.site))
            fsync_delay_ms = self.chaos_policy.fsync_delay_ms(int(config.site))
            link_chaos = LinkChaos(self.chaos_policy, int(config.site))
        self.clock = TimeoutClock(skew=skew)
        self.vote_policy = FixedVotes(
            {config.site: Vote.YES if config.vote == "yes" else Vote.NO}
        )
        config.data_dir.mkdir(parents=True, exist_ok=True)
        self.store = SiteLogStore(
            config.data_dir / f"site-{config.site}.dtlog",
            fsync=(
                delayed_fsync(fsync_delay_ms / 1000.0)
                if fsync_delay_ms > 0
                else os.fsync
            ),
        )
        self.store.on_batch = self._on_fsync_batch
        self.store.on_durable = self._publish_durable
        self.metrics = MetricsRegistry()
        self.transport = Transport(
            site=config.site,
            host=config.host,
            port=config.port,
            peers=config.peers,
            clock=self.clock,
            on_frame=self._on_peer_frame,
            on_client=self._on_client,
            on_suspect=self._on_suspect,
            on_recover=self._on_recover,
            on_restart=self._on_peer_restart,
            boot=self.store.boot_count,
            hb_interval=config.hb_interval,
            suspect_after=config.suspect_after,
            trace=self.trace,
            wait_durable=self.store.wait_durable,
            chaos=link_chaos,
            codec=config.codec,
        )
        self.view = _TransportView(self.transport)
        self.txns: dict[int, LiveTxn] = {}
        self.paused = False
        self._pause_kind_count = 0
        #: Span-id allocator for net.send events; ids are cluster-unique
        #: (site and boot baked in) so stitched traces never collide.
        self._span_seq = 0
        #: Span id of the message whose delivery is being handled right
        #: now — every trace entry emitted inside that (synchronous)
        #: handling is stamped with it as ``parent``, which is how the
        #: stitched cluster trace carries causality across sites.
        self._current_parent: Optional[int] = None
        self._trace_entries = 0
        self._trace_dropped = 0
        self._waiters: dict[int, list[asyncio.Future]] = {}
        self._inflight_sem = asyncio.Semaphore(config.max_inflight)
        self._gateway_permits: set[int] = set()
        self._undecided = 0
        #: Decided-but-not-yet-durable: (lsn, txn, outcome, via) in LSN
        #: order, published by the store's durability callback.
        self._unpublished: collections.deque[
            tuple[int, LiveTxn, Outcome, str]
        ] = collections.deque()
        self._metrics_timer: Optional[asyncio.TimerHandle] = None
        # Block-buffered, not line-buffered: a syscall per trace entry
        # is measurable at concurrent-bench rates.  Flushed explicitly
        # at the determinism points (pause marker, stop) — a kill -9
        # may truncate the advisory trace tail, never the DT log.
        self._trace_file = open(
            config.data_dir / f"site-{config.site}.trace.jsonl", "a"
        )
        self._site_str = str(int(config.site))
        self._metrics_path = config.data_dir / f"site-{config.site}.metrics.json"
        self._ready_path = config.data_dir / f"site-{config.site}.ready"
        self._paused_path = config.data_dir / f"site-{config.site}.paused"
        self.shutdown = asyncio.Event()
        self._tasks: list[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the transport, recover logged transactions, arm markers."""
        self.store.start_group_commit()
        await self.transport.start()
        self.trace(
            "live.boot",
            f"site {self.config.site} up (boot {self.store.boot_count}, "
            f"{self.config.spec_name}, n={self.config.n_sites})",
            boot=self.store.boot_count,
            restarted=self.store.restarted,
        )
        if self.store.restarted:
            for txn_id in self.store.txn_ids():
                txn = self._create_txn(txn_id, crashed=True)
                txn.trace(
                    "live.recover",
                    f"replaying {len(self.store.records_for(txn_id))} "
                    "durable records and running recovery",
                )
                txn.recovery.on_restart()
        self._tasks.append(asyncio.create_task(self._ready_watch()))
        self.write_metrics()

    async def run(self) -> None:
        """Start, then serve until :attr:`shutdown` is set."""
        await self.start()
        await self.shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Tear down tasks, transport, files (idempotent)."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        self._unpublished.clear()
        if self._metrics_timer is not None:
            self._metrics_timer.cancel()
            self._metrics_timer = None
        for txn in self.txns.values():
            txn.cancel_all_timers()
        await self.transport.stop()
        await self.store.stop_group_commit()
        self.write_metrics()
        self.store.close()
        if not self._trace_file.closed:
            self._trace_file.close()

    async def _ready_watch(self) -> None:
        """Write the ready marker once every peer has been heard from.

        The cluster harness waits for all markers before starting
        transactions, so a slow-booting site cannot be suspected (and
        spuriously terminated against) during startup.
        """
        while not self.transport.all_peers_seen():
            await asyncio.sleep(0.02)
        self._ready_path.write_text(f"{self.store.boot_count}\n")
        self.trace("live.ready", "all peers seen; ready marker written")

    # ------------------------------------------------------------------
    # Transaction registry
    # ------------------------------------------------------------------

    def _create_txn(self, txn_id: int, crashed: bool = False) -> LiveTxn:
        txn = LiveTxn(self, txn_id, crashed=crashed)
        self.txns[txn_id] = txn
        self._undecided += 1
        self.metrics.set_gauge("inflight_txns", self._undecided)
        if self._undecided == 1:
            # 0 -> 1 transition: the on-disk snapshot still reads
            # "quiescent" from the last publication, and the harness's
            # drain check trusts that file — under WAN-delayed links a
            # participant can sit here for milliseconds waiting on its
            # decision frame while the harness concludes nothing is in
            # flight and stops the cluster.  Publish the transition
            # immediately; under load _undecided stays above zero so
            # this never touches the batched hot path.
            self.write_metrics()
        return txn

    def _txn_for_frame(self, txn_id: int, payload: Any) -> Optional[LiveTxn]:
        """Resolve (or create) the host for an incoming peer frame.

        Commit-protocol traffic for an unknown transaction is a
        genuinely new transaction joining fresh, and so is termination
        traffic at a never-crashed site: a bystander that never
        received its vote-request participates in the termination
        protocol from state ``q``, which is exactly what drives the
        rule to ABORT (dropping those frames instead would deadlock the
        backup coordinator, which never times out a live peer).

        Two cases instead come up as *recovered* hosts that resolve
        themselves (unilateral abort, or in-doubt queries) before the
        frame is delivered:

        * any non-protocol payload at a restarted site — no durable
          record means the dead incarnation never voted;
        * an ``OutcomeQuery`` at a never-crashed site — recovery
          queries only flow after a failure, and a site with no host
          and no record provably never voted (votes are force-logged
          before any send), so nobody can have committed and nobody
          will ever send the vote-request this site would need to make
          progress on its own.
        """
        txn = self.txns.get(txn_id)
        if txn is not None:
            return txn
        protocol_traffic = isinstance(payload, (ProtoMsg, type(None)))
        if isinstance(payload, OutcomeReply):
            return None  # A reply to a query we never sent: drop.
        crashed = not protocol_traffic and (
            self.store.restarted or isinstance(payload, OutcomeQuery)
        )
        txn = self._create_txn(txn_id, crashed=crashed)
        if txn.ever_crashed:
            txn.trace(
                "live.unknown_txn",
                "no record of this transaction but failure-path traffic "
                "arrived for it; applying the unilateral-abort recovery "
                "rule",
            )
            txn.recovery.on_restart()
        return txn

    # ------------------------------------------------------------------
    # Outbound frames
    # ------------------------------------------------------------------

    def _next_span(self) -> int:
        """Allocate a cluster-unique span id for one ``net.send``.

        ``site * 1e9 + boot * 1e6 + seq`` keeps ids unique across
        sites *and* across restarts of one site (the trace file is
        appended across boots), so :class:`repro.sim.spans.SpanIndex`
        over a stitched cluster trace never conflates two messages.
        """
        self._span_seq += 1
        return (
            int(self.config.site) * 1_000_000_000
            + self.store.boot_count * 1_000_000
            + self._span_seq
        )

    def send_proto(self, txn_id: int, msg: Msg) -> None:
        """Transmit one commit-protocol model message."""
        if self.paused:
            self.trace(
                "live.send_dropped",
                f"paused; dropping {msg}",
                txn=txn_id,
            )
            return
        self.metrics.inc(
            "proto_frames_sent_total",
            protocol=self.config.spec_name,
            kind=msg.kind,
        )
        sid = self._next_span()
        self.trace(
            "net.send",
            f"{msg.kind} -> site {int(msg.dst)}",
            msg_id=sid,
            src=int(self.config.site),
            dst=int(msg.dst),
            txn=txn_id,
            kind=msg.kind,
        )
        if msg.dst == self.config.site:
            # Decentralized specs have every site send its vote to
            # itself too; the simulator's network delivers those like
            # any message, so loop them back here (asynchronously, to
            # keep delivery outside the engine's current pump).
            self._loopback(txn_id, ProtoMsg(msg.kind), sid)
        else:
            # The engine force-logged any vote/decision this message
            # implies *before* calling send; gating the frame on the
            # log's last *forced* record preserves the write-ahead rule
            # while the group-commit flusher batches the actual fsync.
            # (A lazily appended presumption-redundant record must not
            # hold frames back; with no lazy appends this watermark is
            # the pending tail.)
            self.transport.send(
                msg.dst,
                stamp_trace_context(
                    {
                        "t": "payload",
                        "txn": txn_id,
                        "d": encode_payload(ProtoMsg(msg.kind)),
                    },
                    sid,
                    self._current_parent,
                ),
                barrier=self.store.last_forced_lsn,
                volatile=True,
            )
        self._count_pause_kind(msg.kind)

    def send_payload_frame(self, txn_id: int, dst: SiteId, payload: Any) -> None:
        """Transmit one termination/recovery payload."""
        if self.paused:
            return
        encoded = encode_payload(payload)
        sid = self._next_span()
        self.trace(
            "net.send",
            f"{encoded['p']} -> site {int(dst)}",
            msg_id=sid,
            src=int(self.config.site),
            dst=int(dst),
            txn=txn_id,
            kind=encoded["p"],
        )
        if dst == self.config.site:
            self._loopback(txn_id, payload, sid)
            return
        self.transport.send(
            dst,
            stamp_trace_context(
                {"t": "payload", "txn": txn_id, "d": encoded},
                sid,
                self._current_parent,
            ),
            barrier=self.store.last_forced_lsn,
        )

    def _loopback(
        self, txn_id: int, payload: Any, sid: Optional[int] = None
    ) -> None:
        """Deliver a self-addressed payload on the next loop turn."""
        asyncio.get_running_loop().call_soon(
            self._deliver_local, txn_id, payload, sid
        )

    def _deliver_local(
        self, txn_id: int, payload: Any, sid: Optional[int] = None
    ) -> None:
        if self.paused:
            return
        if sid is not None:
            self.trace(
                "net.deliver",
                f"loopback delivery at site {int(self.config.site)}",
                msg_id=sid,
                src=int(self.config.site),
                dst=int(self.config.site),
                txn=txn_id,
            )
        self._current_parent = sid
        try:
            txn = self._txn_for_frame(txn_id, payload)
            if txn is not None:
                txn.deliver_payload(self.config.site, payload)
        finally:
            self._current_parent = None

    def send_external(self, txn_id: int, msg: Msg) -> None:
        """Forward an external input to the site that consumes it."""
        sid = self._next_span()
        self.trace(
            "net.send",
            f"external {msg.kind} -> site {int(msg.dst)}",
            msg_id=sid,
            src=int(self.config.site),
            dst=int(msg.dst),
            txn=txn_id,
            kind=msg.kind,
        )
        self.transport.send(
            msg.dst,
            stamp_trace_context(
                {"t": "external", "txn": txn_id, "kind": msg.kind},
                sid,
                self._current_parent,
            ),
            volatile=True,
        )

    # ------------------------------------------------------------------
    # Crash injection (pause-then-kill determinism)
    # ------------------------------------------------------------------

    def _count_pause_kind(self, kind: str) -> None:
        if self.config.pause_after is None or self.paused:
            return
        pause_kind, pause_count = self.config.pause_after
        if kind != pause_kind:
            return
        self._pause_kind_count += 1
        if self._pause_kind_count < pause_count:
            return
        # Freeze *synchronously*: incoming frames and timers stop now,
        # before any reply to the frames just sent can race back in.
        self.paused = True
        self.trace(
            "live.paused",
            f"pause-after {pause_kind}:{pause_count} reached; freezing",
        )
        self._tasks.append(asyncio.create_task(self._finish_pause()))

    async def _finish_pause(self) -> None:
        """Flush the frames that triggered the pause, then mark it.

        After the marker exists, everything sent before the pause is in
        the kernel's buffers — the harness can ``kill -9`` without
        retracting the broadcast, making the crash point exact.
        """
        await self.transport.flush()
        self.write_metrics()  # Fresh snapshot before the expected kill -9.
        self.trace("live.pause_marker", "flushed; writing paused marker")
        self._trace_file.flush()
        self._paused_path.write_text("paused\n")

    # ------------------------------------------------------------------
    # Inbound frames
    # ------------------------------------------------------------------

    async def _on_peer_frame(self, src: SiteId, frame: dict[str, Any]) -> None:
        if self.paused:
            return
        kind = frame.get("t")
        sid = frame.get("sid")
        if sid is not None:
            # Echo the sender's span id as this deliver's msg_id —
            # the cross-process half of the SpanIndex contract.  The
            # deliver itself is a root event (no parent); causality
            # flows through the entries emitted while handling it.
            self.trace(
                "net.deliver",
                f"{kind} frame from site {int(src)}",
                msg_id=int(sid),
                src=int(src),
                dst=int(self.config.site),
                txn=frame.get("txn"),
            )
        if kind == "payload":
            payload = decode_payload(frame["d"])
            self._current_parent = int(sid) if sid is not None else None
            try:
                txn = self._txn_for_frame(int(frame["txn"]), payload)
                if txn is not None:
                    txn.deliver_payload(src, payload)
            finally:
                self._current_parent = None
        elif kind == "external":
            self._current_parent = int(sid) if sid is not None else None
            try:
                txn = self._txn_for_frame(int(frame["txn"]), None)
                if txn is not None and not txn.ever_crashed:
                    txn.engine.receive(
                        Msg(str(frame["kind"]), EXTERNAL, self.config.site)
                    )
            finally:
                self._current_parent = None
        else:
            self.trace(
                "live.bad_frame", f"unknown peer frame type {kind!r}",
                peer=int(src),
            )

    # ------------------------------------------------------------------
    # Failure detector fan-out
    # ------------------------------------------------------------------

    def _on_suspect(self, peer: SiteId) -> None:
        local_ro = self.config.site in self.spec.read_only_sites
        for txn in list(self.txns.values()):
            if peer not in self.spec.automata:
                continue
            txn.known_failed.add(peer)
            txn.trace(
                "site.peer_failed", f"suspecting site {peer} (heartbeat timeout)"
            )
            if not txn.ever_crashed and not local_ro:
                txn.termination.on_peer_failure(peer)

    def _on_recover(self, peer: SiteId) -> None:
        for txn in list(self.txns.values()):
            if peer not in self.spec.automata:
                continue
            txn.trace("site.peer_recovered", f"site {peer} is reachable again")
            txn.recovery.on_peer_recovered(peer)

    def _on_peer_restart(self, peer: SiteId) -> None:
        """A peer's boot incarnation bumped: it crashed and came back.

        A restart faster than ``suspect_after`` never trips the
        heartbeat detector, yet every frame written to the dead
        incarnation's socket is lost — transactions it was carrying
        would hang forever waiting on messages nobody will resend.  The
        paper's model is that a crashed site is *failed* for the
        transactions it was running (it rejoins through recovery, where
        its empty log licenses unilateral abort), so each in-flight
        transaction here treats the restart exactly like a detected
        failure and invokes the termination protocol.
        """
        local_ro = self.config.site in self.spec.read_only_sites
        for txn in list(self.txns.values()):
            if peer not in self.spec.automata:
                continue
            if txn.decided is not None or txn.ever_crashed or local_ro:
                continue
            txn.known_failed.add(peer)
            txn.trace(
                "site.peer_restarted",
                f"site {peer} crashed and restarted mid-transaction; "
                "treating as a failure",
            )
            txn.termination.on_peer_failure(peer)

    # ------------------------------------------------------------------
    # Gateway + client protocol
    # ------------------------------------------------------------------

    def begin_txn(self, txn_id: int) -> LiveTxn:
        """Start one transaction as its gateway.

        Injects the spec's external inputs: the local automaton's
        directly, every other site's via ``external`` frames — the same
        fan-out for central-site (one ``request`` to the coordinator)
        and decentralized (an ``xact`` per site) protocols.
        """
        txn = self.txns.get(txn_id)
        if txn is None:
            txn = self._create_txn(txn_id)
        txn.trace("live.begin", f"gateway starting transaction {txn_id}")
        local = []
        for msg in sorted(self.spec.initial_messages):
            if msg.dst == self.config.site:
                local.append(msg)
            else:
                self.send_external(txn_id, msg)
        for msg in local:
            if not txn.ever_crashed:
                txn.engine.receive(msg)
        return txn

    async def _on_client(
        self,
        first: dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection until it closes.

        A client may send any number of requests over one connection —
        the closed-loop benchmark workers reuse theirs across
        transactions, which takes TCP setup/accept off the per-txn
        path — or send one frame and hang up (``repro txn`` does).
        Requests on one connection are served strictly in order.
        """
        frame: Optional[dict[str, Any]] = first
        try:
            while frame is not None:
                kind = frame.get("t")
                if kind == "begin":
                    await self._client_begin(frame, writer)
                elif kind == "status":
                    self._client_status(frame, writer)
                    await writer.drain()
                elif kind == "shutdown":
                    writer.write(encode_frame({"t": "ok"}))
                    await writer.drain()
                    self.shutdown.set()
                    return
                else:
                    writer.write(
                        encode_frame(
                            {"t": "error", "error": f"unknown request {kind!r}"}
                        )
                    )
                    await writer.drain()
                    return
                frame = await read_frame(reader)
        finally:
            writer.close()

    async def _client_begin(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Serve one ``begin``: admit under backpressure, start, wait.

        Many begins are served concurrently — each client connection
        is its own coroutine, and the per-transaction FSAs have no
        cross-transaction ordering constraint, so in-flight
        transactions overlap freely.  The semaphore bounds how many
        undecided client-begun transactions the gateway will host; a
        ``begin`` beyond the bound waits for a slot instead of failing.
        """
        txn_id = int(frame["txn"])
        queued_at = self.clock.now()
        if txn_id not in self.txns:
            await self._inflight_sem.acquire()
            if txn_id in self.txns:  # Raced with a peer frame / dup begin.
                self._inflight_sem.release()
            else:
                self._gateway_permits.add(txn_id)
                txn = self._create_txn(txn_id)
                # Stage clock for the latency breakdown: time parked
                # behind backpressure vs. time resolving the commit.
                txn.stage_begin = queued_at
                txn.stage_admitted = self.clock.now()
        txn = self.begin_txn(txn_id)
        if not frame.get("wait", True):
            writer.write(encode_frame({"t": "ok", "txn": txn_id}))
            await writer.drain()
            return
        if not txn.published:
            # Wait for publication, not just the in-memory decision:
            # the client's "decided" reply must never precede the
            # decision record's fsync (the group-commit contract).
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._waiters.setdefault(txn_id, []).append(future)
            await future
        assert txn.decided is not None
        outcome, via = txn.decided
        reply: dict[str, Any] = {
            "t": "decided",
            "txn": txn_id,
            "outcome": outcome.value,
            "via": via,
        }
        if txn.stages is not None:
            # The breakdown is additive by construction, so the total
            # the client sees is exactly the sum of its stages.
            reply["stages"] = txn.stages
            reply["elapsed_ms"] = round(sum(txn.stages.values()), 3)
        else:
            reply["elapsed_ms"] = (self.clock.now() - txn.started_at) * 1000.0
        writer.write(encode_frame(reply))
        await writer.drain()

    def _client_status(
        self, frame: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        txn_id = int(frame["txn"])
        txn = self.txns.get(txn_id)
        reply: dict[str, Any] = {
            "t": "status-reply",
            "txn": txn_id,
            "site": int(self.config.site),
            "boot": self.store.boot_count,
            "known": txn is not None,
        }
        if txn is None:
            reply.update(state=None, outcome=Outcome.UNDECIDED.value, blocked=False)
        else:
            reply.update(
                state=txn.engine.state,
                outcome=txn.engine.outcome.value,
                blocked=txn.blocked,
                ever_crashed=txn.ever_crashed,
                via=txn.decided[1] if txn.decided else None,
            )
        writer.write(encode_frame(reply))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def trace(self, category: str, detail: str, **data: Any) -> None:
        """Append one JSONL trace entry (PR 1 format, wall-clock time).

        Serialized by hand rather than via ``TraceEntry.to_json`` or
        ``json.dumps`` — the bytes are identical (fixed field order,
        sorted ``data`` keys, ``ensure_ascii`` escapes, ``str()`` for
        non-JSON leaves), but this runs tens of times per transaction
        per site, and on a single-core host the serializer is a
        measurable slice of cluster throughput.  Scalars are formatted
        directly (``repr`` of a finite float is its JSON form; plain
        ASCII strings need no escaping); anything else falls back to
        ``json.dumps`` with the exact options the old path used, so the
        output can never diverge.
        """
        if self._trace_file.closed:
            return
        if (
            self._trace_dropped
            or self._trace_entries >= self.config.trace_max_entries
        ):
            # Keep-oldest overflow: boot and the first runs survive,
            # the snapshot's trace_dropped counter records the loss.
            self._trace_dropped += 1
            return
        self._trace_entries += 1
        if self._current_parent is not None:
            data.setdefault("parent", self._current_parent)
        site = data.pop("site", None)
        site_s = str(int(site)) if site is not None else self._site_str
        items = []
        for key in sorted(data):
            value = data[key]
            kind = type(value)
            if kind is int:
                value_s = str(value)
            elif kind is str:
                value_s = (
                    f'"{value}"' if _PLAIN_JSON_STR(value) else _dumps_str(value)
                )
            elif kind is bool:
                value_s = "true" if value else "false"
            elif kind is float:
                value_s = repr(value)
            elif value is None:
                value_s = "null"
            else:
                value_s = json.dumps(
                    value, separators=(",", ":"), default=str
                )
            items.append(f'"{key}":{value_s}')
        detail_s = f'"{detail}"' if _PLAIN_JSON_STR(detail) else _dumps_str(detail)
        self._trace_file.write(
            f'{{"time":{self.clock.now()!r},"category":"{category}",'
            f'"site":{site_s},"detail":{detail_s},'
            f'"data":{{{",".join(items)}}}}}\n'
        )

    def on_txn_decided(self, txn: LiveTxn, outcome: Outcome, via: str) -> None:
        """Publish one decision once its log record is durable.

        The engine already force-logged the decision (buffered, LSN
        assigned); everything observable — metrics, client replies,
        the backpressure slot — waits for the group-commit flusher to
        make it durable, so a client can never observe a decision the
        site could forget in a crash.  Publication rides the store's
        durability callback (one synchronous sweep per fsync batch)
        rather than a task per decision.
        """
        if txn.published:
            return
        if txn.decided_at is None:
            txn.decided_at = self.clock.now()
        # Publication gates on the last durability *demand*, not the
        # raw tail: a presumption-lazy decision record publishes as
        # soon as prior forced records are down (the presumption, not
        # the fsync, is what makes forgetting it safe).
        lsn = self.store.last_forced_lsn
        self._unpublished.append((lsn, txn, outcome, via))
        if self.store.durable_lsn >= lsn:
            # Synchronous-fallback store (or an already-durable tail):
            # no flusher callback is coming for this LSN.
            self._publish_durable(self.store.durable_lsn)

    def _publish_durable(self, upto: int) -> None:
        """Publish every queued decision whose record is durable.

        Called by the store after each fsync with the new watermark;
        queue order is LSN order because ``pending_lsn`` is monotonic.
        """
        while self._unpublished and self._unpublished[0][0] <= upto:
            lsn, txn, outcome, via = self._unpublished.popleft()
            if txn.published:
                continue
            txn.published = True
            self._undecided = max(0, self._undecided - 1)
            now = self.clock.now()
            latency_ms = (now - txn.started_at) * 1000.0
            self.metrics.inc(
                "txns_total", protocol=self.config.spec_name, outcome=outcome.value
            )
            self.metrics.observe(
                "commit_latency_ms",
                latency_ms,
                buckets=WALL_MS_BUCKETS,
                protocol=self.config.spec_name,
                outcome=outcome.value,
            )
            if (
                txn.stage_begin is not None
                and txn.stage_admitted is not None
                and txn.decided_at is not None
            ):
                # Gateway-side latency decomposition.  The stages tile
                # the begin→publication interval exactly: queue wait
                # behind backpressure, protocol resolution (vote round
                # RTTs and decision), then the group-commit fsync wait
                # between the in-memory decision and its durability.
                txn.stages = {
                    "queue_ms": round(
                        (txn.stage_admitted - txn.stage_begin) * 1000.0, 3
                    ),
                    "resolve_ms": round(
                        (txn.decided_at - txn.stage_admitted) * 1000.0, 3
                    ),
                    "durable_ms": round(
                        (now - txn.decided_at) * 1000.0, 3
                    ),
                }
                for stage, value in txn.stages.items():
                    self.metrics.observe(
                        "txn_stage_ms",
                        value,
                        buckets=WALL_MS_BUCKETS,
                        protocol=self.config.spec_name,
                        stage=stage.removesuffix("_ms"),
                    )
                txn.trace(
                    "txn.stages",
                    "latency breakdown at publication",
                    total_ms=round(sum(txn.stages.values()), 3),
                    **txn.stages,
                )
            self.metrics.set_gauge("inflight_txns", self._undecided)
            self._metrics_changed()
            for future in self._waiters.pop(txn.txn_id, []):
                if not future.done():
                    future.set_result((outcome, via))
            if txn.txn_id in self._gateway_permits:
                self._gateway_permits.discard(txn.txn_id)
                self._inflight_sem.release()

    def _on_fsync_batch(self, batch: int) -> None:
        """Roll one group-commit fsync into metrics and the trace."""
        self.metrics.inc("dtlog_fsync_calls_total")
        self.metrics.observe(
            "batched_records_per_fsync",
            float(batch),
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        duration_ms = (self.store.last_fsync_s or 0.0) * 1000.0
        self.metrics.observe(
            "fsync_duration_ms", duration_ms, buckets=WALL_MS_BUCKETS
        )
        self.trace(
            "log.fsync",
            f"group-commit fsync of {batch} record(s)",
            batch=int(batch),
            duration_ms=round(duration_ms, 3),
        )

    def on_txn_blocked(self, txn: LiveTxn) -> None:
        """Count one blocked transaction (2PC's defining failure mode)."""
        self.metrics.inc("txns_blocked_total", protocol=self.config.spec_name)
        self.write_metrics()
        # Query every peer that is reachable *right now*, not just the
        # ones this host saw fail.  The recovered-peer event a blocked
        # site normally waits for may already have fired (a fast
        # restart delivers its hello before termination finishes
        # blocking us) or may never fire for this host at all (created
        # by termination traffic after the restart, so its
        # known_failed set is empty).  Asking an operational peer is
        # harmless — it answers from its log — and a peer that is
        # still down will trigger on_peer_recovered when it returns.
        for peer in sorted(self.config.peers):
            if peer in self.spec.automata and peer not in self.transport.suspected:
                txn.recovery.on_peer_recovered(peer)

    def _metrics_changed(self) -> None:
        """Coalesce snapshot writes off the decision hot path.

        Serializing the full registry per decision was the measured
        throughput ceiling under concurrency (a JSON dump + rename per
        txn per site).  Quiescence writes immediately — the harness
        reads snapshots between benchmark runs and after scenarios, when
        nothing is in flight — while under load a single deferred timer
        batches however many decisions land within the interval.
        """
        if self._undecided == 0:
            if self._metrics_timer is not None:
                self._metrics_timer.cancel()
                self._metrics_timer = None
            self.write_metrics()
            return
        if self._metrics_timer is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:  # Sync-mode use outside a loop (tests).
                self.write_metrics()
                return
            self._metrics_timer = loop.call_later(
                METRICS_WRITE_INTERVAL, self._metrics_timer_fired
            )

    def _metrics_timer_fired(self) -> None:
        self._metrics_timer = None
        self.write_metrics()

    def write_metrics(self) -> None:
        """Atomically publish the metrics snapshot (tmp + rename).

        Written on boot, quiescence, pause, blocked txns, and exit —
        and at most every ``METRICS_WRITE_INTERVAL`` while decisions
        are streaming — so a site that is about to be ``kill -9``-ed
        still leaves a consistent snapshot.  No fsync here: page-cache
        contents survive SIGKILL (only an OS crash loses them, which is
        not this runtime's threat model), and the snapshot is advisory
        observability, not the DT log — paying ~an fsync per decision
        on the hot path bought nothing.
        """
        snapshot = self.metrics.to_dict()
        snapshot["live"] = {
            "site": int(self.config.site),
            "boot": self.store.boot_count,
            "forced_writes": self.store.forced_writes,
            "forced_writes_skipped": self.store.forced_writes_skipped,
            "fsync_calls": self.store.fsync_calls,
            "presumption": self.config.presumption,
            "inflight_txns": self._undecided,
            "frames_sent": self.transport.frames_sent,
            "frames_received": self.transport.frames_received,
            "socket_writes": self.transport.socket_writes,
            "decoder_hwm": self.transport.decoder_hwm,
            "peer_reconnects": {
                str(int(peer)): count
                for peer, count in sorted(self.transport.reconnects.items())
            },
            "trace_entries": self._trace_entries,
            "trace_dropped": self._trace_dropped,
            "chaos_drops": self.transport.chaos_drops,
            "chaos_delays": self.transport.chaos_delays,
            "suspected": sorted(int(p) for p in self.transport.suspected),
        }
        atomic_write_json(self._metrics_path, snapshot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiveSite(site={self.config.site}, {self.config.spec_name}, "
            f"txns={len(self.txns)}, paused={self.paused})"
        )
