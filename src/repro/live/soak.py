"""Soak runner: sustained transaction volume under composed chaos.

A benchmark answers "how fast"; a soak answers "does it stay
*correct* while the environment misbehaves for a long time".  This
module drives waves of transactions through a live
:class:`~repro.live.cluster.ClusterHarness` whose sites run under a
:class:`~repro.live.chaos.ChaosPolicy` — WAN latency on every link,
slow fsyncs, or both — and keeps the verification backbone engaged the
whole way:

* between waves, the durable DT logs are re-audited (AC1 plus the
  write-ahead timeline checks of :mod:`repro.live.audit`), so a
  violation stops the soak at the wave that introduced it instead of
  being discovered post-mortem;
* after the cluster drains and stops, a final audit runs with trace
  cross-checking, and the per-site traces are stitched canonically —
  the byte-stable normalization that makes two runs of the same
  fixed-seed config comparable with ``diff``.

The chaos profiles here are deliberately *benign*: delay-only WAN
rules and slow disks stress timing, group-commit placement, and the
failure detector's patience without dropping protocol frames (the
live runtime has no retransmission — dropped protocol frames are the
:func:`~repro.live.chaos.gray_link_policy` scenario's job, where a
split decision is the *expected* outcome).  A soak under these
profiles must therefore commit every transaction and audit clean;
anything else is a finding.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from pathlib import Path
from typing import Any, Optional

from repro.errors import LiveConfigError
from repro.live.audit import AuditReport, audit_data_dir
from repro.live.chaos import ChaosPolicy, slow_disk_policy, wan_policy
from repro.live.cluster import ClusterConfig, ClusterHarness
from repro.live.stitch import stitch_data_dir

#: Chaos profiles the soak runner can compose on demand.
SOAK_PROFILES = ("none", "wan", "disk", "combined")


def build_profile(
    profile: str,
    n_sites: int,
    seed: int = 0,
    wan_min_ms: float = 1.0,
    wan_max_ms: float = 6.0,
    wan_jitter_ms: float = 2.0,
    fsync_delay_ms: float = 4.0,
) -> Optional[ChaosPolicy]:
    """Materialize a named soak profile into a :class:`ChaosPolicy`.

    Raises:
        LiveConfigError: If ``profile`` is not one of
            :data:`SOAK_PROFILES`.
    """
    if profile not in SOAK_PROFILES:
        raise LiveConfigError(
            f"unknown soak profile {profile!r} (want one of {SOAK_PROFILES})"
        )
    if profile == "none":
        return None
    wan = wan_policy(
        n_sites,
        seed=seed,
        min_ms=wan_min_ms,
        max_ms=wan_max_ms,
        jitter_ms=wan_jitter_ms,
    )
    disk = slow_disk_policy(n_sites, fsync_delay_ms=fsync_delay_ms, seed=seed)
    if profile == "wan":
        return wan
    if profile == "disk":
        return disk
    return wan.merged(disk)


@dataclasses.dataclass
class SoakConfig:
    """Everything one soak run needs.

    Attributes:
        data_dir: Where the cluster's DT logs and traces land.
        spec_name: Protocol to soak (any catalog name).
        n_sites: Cluster size.
        txns: Total transactions to push through.
        batch: Transactions per wave (an audit runs between waves).
        concurrency: Closed-loop clients per wave.
        profile: One of :data:`SOAK_PROFILES`.
        seed: Chaos seed (delay draws and WAN topology derive from it).
        hb_interval: Heartbeat period for every site.
        suspect_after: Failure-detector patience.
        requery_interval: Termination-protocol requery period.
        timeout: Per-decision and readiness timeout for the harness.
        fsync_delay_ms: Injected fsync latency for disk profiles.
        codec: Wire codec every site uses for peer frames.
        presumption: Commit presumption every site runs under
            (``none``, ``abort``, or ``commit``).
        ro_sites: Site ids that participate read-only (phase-1 exit).
        loop: Event loop every site process runs (``asyncio`` or
            ``uvloop``).
        trace_cap: Per-site trace ring capacity override (``None``
            keeps the site default).
    """

    data_dir: Path
    spec_name: str = "3pc-central"
    n_sites: int = 3
    txns: int = 200
    batch: int = 50
    concurrency: int = 4
    profile: str = "combined"
    seed: int = 0
    hb_interval: float = 0.1
    suspect_after: float = 0.6
    requery_interval: float = 0.3
    timeout: float = 30.0
    fsync_delay_ms: float = 4.0
    codec: str = "json"
    presumption: str = "none"
    ro_sites: tuple = ()
    loop: str = "asyncio"
    trace_cap: Optional[int] = None

    def __post_init__(self) -> None:
        self.data_dir = Path(self.data_dir)
        if self.txns < 1:
            raise LiveConfigError(f"need at least 1 soak txn, got {self.txns}")
        if self.batch < 1:
            raise LiveConfigError(f"soak batch must be >= 1, got {self.batch}")


@dataclasses.dataclass
class SoakResult:
    """One soak run's verdict and evidence.

    Attributes:
        profile: The chaos profile the run used.
        chaos_hash: Content hash of the materialized policy (``None``
            for the ``none`` profile).
        txns: Transactions actually completed.
        waves: Benchmark waves executed.
        elapsed_s: Wall-clock benchmark time (audits excluded).
        txns_per_sec: Throughput over ``elapsed_s``.
        latency_p99_ms: Worst per-wave p99 client latency.
        audits: Mid-run audit passes executed (all must be clean for
            the run to reach the final audit).
        violations: Every violation any audit pass reported.
        audit_notes: Notes from the *final* audit (torn tails etc.).
        chaos_drops: Per-site chaos drop counters (should be all zero
            under delay-only profiles).
        chaos_delays: Per-site chaos delay counters.
        stitch: Canonical stitch summary dict.
        stitch_hash: sha256 (16 hex) of the canonical stitched JSONL —
            the byte-stability fingerprint.
    """

    profile: str
    chaos_hash: Optional[str]
    txns: int
    waves: int
    elapsed_s: float
    txns_per_sec: float
    latency_p99_ms: float
    audits: int
    violations: list[str]
    audit_notes: list[str]
    chaos_drops: dict[int, int]
    chaos_delays: dict[int, int]
    stitch: dict[str, Any]
    stitch_hash: str

    @property
    def ok(self) -> bool:
        """Whether every audit pass came back clean."""
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the CLI's report / sidecar)."""
        body = dataclasses.asdict(self)
        body["ok"] = self.ok
        body["chaos_drops"] = {
            str(site): count for site, count in sorted(self.chaos_drops.items())
        }
        body["chaos_delays"] = {
            str(site): count
            for site, count in sorted(self.chaos_delays.items())
        }
        return body


def _chaos_counters(harness: ClusterHarness) -> tuple[dict[int, int], dict[int, int]]:
    """Per-site chaos drop/delay counters from the metrics snapshots."""
    drops: dict[int, int] = {}
    delays: dict[int, int] = {}
    for site in sorted(harness.ports):
        metrics = harness.site_metrics(site)
        live = (metrics or {}).get("live", {})
        drops[int(site)] = int(live.get("chaos_drops", 0))
        delays[int(site)] = int(live.get("chaos_delays", 0))
    return drops, delays


def run_soak(config: SoakConfig) -> SoakResult:
    """Run one soak to completion (or to its first audit violation).

    The cluster starts under the materialized chaos profile, commits
    ``config.txns`` transactions in ``config.batch``-sized waves with
    a durable-log audit between waves, then stops cleanly and runs the
    final audit (with trace cross-checking) plus a canonical stitch.
    Returns the :class:`SoakResult` either way — callers decide what a
    violation is worth (the CLI exits nonzero).
    """
    policy = build_profile(
        config.profile,
        config.n_sites,
        seed=config.seed,
        fsync_delay_ms=config.fsync_delay_ms,
    )
    cluster = ClusterConfig(
        spec_name=config.spec_name,
        n_sites=config.n_sites,
        data_dir=config.data_dir,
        hb_interval=config.hb_interval,
        suspect_after=config.suspect_after,
        requery_interval=config.requery_interval,
        decide_timeout=config.timeout,
        ready_timeout=config.timeout,
        chaos=policy,
        codec=config.codec,
        presumption=config.presumption,
        ro_sites=config.ro_sites,
        loop=config.loop,
        trace_cap=config.trace_cap,
    )
    violations: list[str] = []
    waves = 0
    done = 0
    elapsed = 0.0
    worst_p99 = 0.0
    audits = 0
    drops: dict[int, int] = {}
    delays: dict[int, int] = {}
    with ClusterHarness(cluster) as harness:
        harness.start()
        while done < config.txns and not violations:
            n = min(config.batch, config.txns - done)
            wave_start = time.monotonic()
            bench = harness.bench(
                n, concurrency=config.concurrency, first_txn=done + 1
            )
            elapsed += time.monotonic() - wave_start
            worst_p99 = max(worst_p99, bench["latency_ms"]["p99"])
            done += n
            waves += 1
            if done < config.txns:
                # Mid-run audit: DT logs only — traces are still being
                # block-buffered by live writers and are advisory anyway.
                report = audit_data_dir(config.data_dir, include_traces=False)
                audits += 1
                violations.extend(report.violations)
        drops, delays = _chaos_counters(harness)
    # Final audit over the quiesced artifacts, traces included.
    final: AuditReport = audit_data_dir(config.data_dir, include_traces=True)
    audits += 1
    violations.extend(final.violations)
    stitched = stitch_data_dir(config.data_dir, canonical=True)
    stitch_hash = hashlib.sha256(
        stitched.trace.to_jsonl().encode()
    ).hexdigest()[:16]
    return SoakResult(
        profile=config.profile,
        chaos_hash=policy.hash if policy is not None else None,
        txns=done,
        waves=waves,
        elapsed_s=round(elapsed, 4),
        txns_per_sec=round(done / elapsed, 2) if elapsed else 0.0,
        latency_p99_ms=worst_p99,
        audits=audits,
        violations=violations,
        audit_notes=list(final.notes),
        chaos_drops=drops,
        chaos_delays=delays,
        stitch=stitched.to_dict(),
        stitch_hash=stitch_hash,
    )
