"""Deterministic chaos injection for the live cluster.

Skeen's nonblocking theorem for 3PC assumes a *reliable* failure
detector: a site is suspected iff it has actually failed.  The live
runtime's heartbeat detector can only approximate that over a real
network, and this module supplies the network conditions under which
the approximation breaks — observably, deterministically, and in a
form that can be serialized, replayed, and round-tripped into the
schedule explorer's corpus for ddmin shrinking.

A :class:`ChaosPolicy` is a frozen, seeded description of everything
the injection seam can do:

* **Gray links** (:class:`ChaosRule`): per ordered peer pair, drop or
  delay only some frame kinds — only heartbeats, only commit-phase
  frames, or a seeded fraction of each.  Rules can arm themselves
  after the link has carried N frames of a trigger kind, which is how
  a scenario says "healthy until the vote-request goes out".
* **WAN latency profiles**: asymmetric per-direction base delay plus
  seeded jitter spikes (:func:`wan_policy`).
* **Slow-fsync disks**: a per-site fsync delay threaded into
  :class:`~repro.live.dtlog.SiteLogStore`'s injectable ``fsync``,
  stressing the adaptive inline-vs-executor EMA placement.
* **Clock skew**: a per-site offset applied to
  :class:`~repro.live.clock.TimeoutClock`.

Injection happens on the *receive* side of the transport
(:meth:`repro.live.transport.Transport._peer_receiver`), before the
frame earns any liveness credit: a dropped frame is exactly as if the
network lost it, and a delayed frame keeps its original socket-arrival
stamp so stale evidence cannot un-suspect a peer.

Determinism contract: every probabilistic rule draws from its own
``random.Random`` stream keyed by ``(policy seed, receiving site,
rule index)``, and consumes one draw per frame *that rule matches*.
Frames on one TCP link arrive in send order, so for any rule whose
matched frames are deterministic in content and per-link order (e.g.
protocol payload frames under a serial workload), the decision stream
is identical across runs regardless of cross-link interleaving.
Rules that match timer-driven heartbeats are deterministic only when
``drop`` is 0 or 1 and ``jitter_ms`` is 0 — heartbeat counts are not
reproducible, so give such rules no randomness to consume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from repro.errors import LiveConfigError

#: Schema version stamped into serialized policies.
CHAOS_SCHEMA = 1

#: Artifact kind marker (mirrors the explorer's replay artifacts).
CHAOS_KIND = "repro.live.chaos"

#: Category tags a rule's ``kinds`` may name (prefixed with ``@``):
#: ``@hb`` heartbeats, ``@payload`` any protocol-host payload frame,
#: ``@proto`` FSA protocol messages specifically, ``@external``
#: external stimulus frames, ``@control`` everything else.
CATEGORIES = ("hb", "payload", "proto", "external", "control")


def frame_chaos_kind(frame: Mapping[str, Any]) -> Tuple[str, Tuple[str, ...]]:
    """Classify a wire frame for chaos matching.

    Returns ``(kind, categories)``: the specific kind a rule can match
    by name (an FSA message kind like ``"prepare"`` for protocol
    payloads, the payload codec tag like ``"term-decision"`` for
    runtime payloads, the external kind for external frames, the frame
    type otherwise) and the ``@``-matchable category tags.
    """
    t = frame.get("t")
    if t == "hb":
        return "hb", ("hb",)
    if t == "payload":
        d = frame.get("d") or {}
        p = d.get("p")
        if p == "proto":
            return str(d.get("kind")), ("payload", "proto")
        return str(p), ("payload",)
    if t == "external":
        return str(frame.get("kind")), ("external",)
    return str(t), ("control",)


@dataclasses.dataclass(frozen=True)
class ChaosRule:
    """One gray-link rule on the ordered link ``src -> dst``.

    Attributes:
        src: Sending site of the link this rule watches.
        dst: Receiving site (rules run on the receiver).
        kinds: Frame kinds the rule applies to — specific kind names
            and/or ``@category`` tags; ``None`` applies to every frame.
        drop: Probability in [0, 1] that a matched frame is dropped.
        delay_ms: Base added one-way delay for matched frames.
        jitter_ms: Extra uniform [0, jitter_ms) delay per frame.
        after_kind: Arm the rule only once the link has carried
            ``after_count`` frames of this kind (``None`` counts every
            frame).  The arming frames themselves pass unmodified.
        after_count: How many trigger frames arm the rule (0 = armed
            from the start).
    """

    src: int
    dst: int
    kinds: Optional[Tuple[str, ...]] = None
    drop: float = 0.0
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    after_kind: Optional[str] = None
    after_count: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise LiveConfigError(f"chaos rule on self-link {self.src}")
        if not 0.0 <= self.drop <= 1.0:
            raise LiveConfigError(f"chaos drop {self.drop} outside [0, 1]")
        if self.delay_ms < 0 or self.jitter_ms < 0:
            raise LiveConfigError("chaos delay/jitter must be >= 0")
        if self.after_count < 0:
            raise LiveConfigError("chaos after_count must be >= 0")
        if self.kinds is not None:
            object.__setattr__(self, "kinds", tuple(self.kinds))
            for kind in self.kinds:  # type: ignore[union-attr]
                if kind.startswith("@") and kind[1:] not in CATEGORIES:
                    raise LiveConfigError(
                        f"unknown chaos category {kind!r}; "
                        f"known: {', '.join('@' + c for c in CATEGORIES)}"
                    )

    def matches(self, kind: str, categories: Tuple[str, ...]) -> bool:
        """Whether this rule applies to a frame of ``kind``/``categories``."""
        if self.kinds is None:
            return True
        for entry in self.kinds:
            if entry.startswith("@"):
                if entry[1:] in categories:
                    return True
            elif entry == kind:
                return True
        return False

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"src": self.src, "dst": self.dst}
        if self.kinds is not None:
            data["kinds"] = list(self.kinds)
        if self.drop:
            data["drop"] = self.drop
        if self.delay_ms:
            data["delay_ms"] = self.delay_ms
        if self.jitter_ms:
            data["jitter_ms"] = self.jitter_ms
        if self.after_kind is not None:
            data["after_kind"] = self.after_kind
        if self.after_count:
            data["after_count"] = self.after_count
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosRule":
        kinds = data.get("kinds")
        return cls(
            src=int(data["src"]),
            dst=int(data["dst"]),
            kinds=tuple(kinds) if kinds is not None else None,
            drop=float(data.get("drop", 0.0)),
            delay_ms=float(data.get("delay_ms", 0.0)),
            jitter_ms=float(data.get("jitter_ms", 0.0)),
            after_kind=data.get("after_kind"),
            after_count=int(data.get("after_count", 0)),
        )


@dataclasses.dataclass(frozen=True)
class ChaosPolicy:
    """A complete, serializable chaos schedule for one cluster run.

    Attributes:
        seed: Root seed for every per-rule random stream.
        links: Gray-link rules, in evaluation order.
        disk: Per-site fsync delay, as sorted ``(site, delay_ms)``.
        skew: Per-site clock offset, as sorted ``(site, offset_s)``.
        note: Human-readable provenance (what scenario built this).
    """

    seed: int = 0
    links: Tuple[ChaosRule, ...] = ()
    disk: Tuple[Tuple[int, float], ...] = ()
    skew: Tuple[Tuple[int, float], ...] = ()
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(
            self, "disk", tuple(sorted((int(s), float(v)) for s, v in self.disk))
        )
        object.__setattr__(
            self, "skew", tuple(sorted((int(s), float(v)) for s, v in self.skew))
        )
        for _, delay in self.disk:
            if delay < 0:
                raise LiveConfigError("chaos fsync delay must be >= 0")

    # -- per-site accessors -------------------------------------------

    def fsync_delay_ms(self, site: int) -> float:
        """Injected fsync delay for ``site`` (0 when unlisted)."""
        return dict(self.disk).get(int(site), 0.0)

    def skew_s(self, site: int) -> float:
        """Clock offset for ``site`` in seconds (0 when unlisted)."""
        return dict(self.skew).get(int(site), 0.0)

    def rules_for(self, dst: int) -> Tuple[Tuple[int, ChaosRule], ...]:
        """The ``(global index, rule)`` pairs received by site ``dst``."""
        return tuple(
            (idx, rule)
            for idx, rule in enumerate(self.links)
            if rule.dst == int(dst)
        )

    def merged(self, other: "ChaosPolicy") -> "ChaosPolicy":
        """Combine two policies (rules concatenate; ``other`` wins on
        per-site disk/skew conflicts; ``self.seed`` is kept)."""
        disk = dict(self.disk)
        disk.update(dict(other.disk))
        skew = dict(self.skew)
        skew.update(dict(other.skew))
        note = " + ".join(n for n in (self.note, other.note) if n)
        return ChaosPolicy(
            seed=self.seed,
            links=self.links + other.links,
            disk=tuple(disk.items()),
            skew=tuple(skew.items()),
            note=note,
        )

    # -- serialization ------------------------------------------------

    def _payload(self) -> dict[str, Any]:
        return {
            "schema": CHAOS_SCHEMA,
            "kind": CHAOS_KIND,
            "seed": self.seed,
            "links": [rule.to_dict() for rule in self.links],
            "disk": {str(site): delay for site, delay in self.disk},
            "skew": {str(site): offset for site, offset in self.skew},
            "note": self.note,
        }

    @property
    def hash(self) -> str:
        """Content hash over the canonical payload (12 hex chars)."""
        canonical = json.dumps(
            self._payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def to_json(self) -> str:
        payload = self._payload()
        payload["hash"] = self.hash
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ChaosPolicy":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise LiveConfigError(f"chaos policy is not JSON: {error}") from error
        if not isinstance(data, dict) or data.get("kind") != CHAOS_KIND:
            raise LiveConfigError("not a chaos policy artifact")
        if data.get("schema") != CHAOS_SCHEMA:
            raise LiveConfigError(
                f"unsupported chaos schema {data.get('schema')!r}"
            )
        policy = cls(
            seed=int(data.get("seed", 0)),
            links=tuple(
                ChaosRule.from_dict(rule) for rule in data.get("links", ())
            ),
            disk=tuple(
                (int(site), float(delay))
                for site, delay in (data.get("disk") or {}).items()
            ),
            skew=tuple(
                (int(site), float(offset))
                for site, offset in (data.get("skew") or {}).items()
            ),
            note=str(data.get("note", "")),
        )
        expected = data.get("hash")
        if expected is not None and expected != policy.hash:
            raise LiveConfigError(
                f"chaos policy hash mismatch: artifact says {expected}, "
                f"content hashes to {policy.hash}"
            )
        return policy

    def save(self, path: Path) -> None:
        from repro.live.files import atomic_write_text

        atomic_write_text(Path(path), self.to_json())

    @classmethod
    def load(cls, path: Path) -> "ChaosPolicy":
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise LiveConfigError(
                f"cannot read chaos policy {path}: {error}"
            ) from error
        return cls.from_json(text)


class LinkChaos:
    """The receive-side chaos engine bound to one receiving site.

    One instance lives inside a site's :class:`Transport` and is asked,
    frame by frame, what the network does to the frame.  All state —
    per-link trigger counts, per-rule random streams, drop/delay
    counters — is local to the receiving site, so determinism never
    depends on cross-site scheduling.
    """

    def __init__(self, policy: ChaosPolicy, site: int) -> None:
        self.policy = policy
        self.site = int(site)
        self._rules = policy.rules_for(self.site)
        #: rule index -> its private random stream (lazily created).
        self._rngs: dict[int, random.Random] = {}
        #: src site -> {kind or None: frames seen on that link}.
        self._seen: dict[int, dict[Optional[str], int]] = {}
        self.drops = 0
        self.delays = 0

    @property
    def active(self) -> bool:
        """Whether any link rule targets this site."""
        return bool(self._rules)

    def _rng(self, index: int) -> random.Random:
        rng = self._rngs.get(index)
        if rng is None:
            rng = random.Random(f"{self.policy.seed}:{self.site}:{index}")
            self._rngs[index] = rng
        return rng

    def _armed(self, rule: ChaosRule, src: int) -> bool:
        if rule.after_count <= 0:
            return True
        counts = self._seen.get(src)
        if counts is None:
            return False
        return counts.get(rule.after_kind, 0) >= rule.after_count

    def decide(self, src: int, frame: Mapping[str, Any]) -> Tuple[bool, float]:
        """What happens to one frame arriving from ``src``.

        Returns ``(drop, delay_s)``.  Arming counts see only *prior*
        frames: the frame that satisfies a trigger passes unmodified.
        """
        src = int(src)
        kind, categories = frame_chaos_kind(frame)
        drop = False
        delay_s = 0.0
        for index, rule in self._rules:
            if rule.src != src or not rule.matches(kind, categories):
                continue
            if not self._armed(rule, src):
                continue
            if rule.drop >= 1.0:
                drop = True
            elif rule.drop > 0.0 and self._rng(index).random() < rule.drop:
                drop = True
            if not drop and (rule.delay_ms or rule.jitter_ms):
                extra = rule.delay_ms
                if rule.jitter_ms:
                    extra += self._rng(index).random() * rule.jitter_ms
                delay_s = max(delay_s, extra / 1000.0)
        counts = self._seen.setdefault(src, {})
        counts[kind] = counts.get(kind, 0) + 1
        counts[None] = counts.get(None, 0) + 1
        if drop:
            self.drops += 1
            return True, 0.0
        if delay_s > 0.0:
            self.delays += 1
        return False, delay_s


# ---------------------------------------------------------------------------
# Packaged profiles
# ---------------------------------------------------------------------------


def wan_policy(
    n_sites: int,
    seed: int = 0,
    min_ms: float = 1.0,
    max_ms: float = 6.0,
    jitter_ms: float = 2.0,
) -> ChaosPolicy:
    """Asymmetric geo-latency profile over every ordered peer pair.

    Each direction of each pair gets its own base delay, derived
    deterministically from the seed (so ``1 -> 2`` and ``2 -> 1``
    differ, like real WAN paths), plus per-frame jitter.  Delay-only
    and scoped to payload/external frames: heartbeats stay on time so
    the failure detector's view of a *slow* network remains "alive",
    which is exactly the regime where commit latency — not suspicion —
    absorbs the geography.
    """
    if n_sites < 2:
        raise LiveConfigError("WAN profile needs at least 2 sites")
    spread = max_ms - min_ms
    if spread < 0:
        raise LiveConfigError("WAN profile needs max_ms >= min_ms")
    rules = []
    for src in range(1, n_sites + 1):
        for dst in range(1, n_sites + 1):
            if src == dst:
                continue
            digest = hashlib.sha256(f"{seed}:{src}->{dst}".encode()).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            rules.append(
                ChaosRule(
                    src=src,
                    dst=dst,
                    kinds=("@payload", "@external"),
                    delay_ms=min_ms + fraction * spread,
                    jitter_ms=jitter_ms,
                )
            )
    return ChaosPolicy(
        seed=seed,
        links=tuple(rules),
        note=f"wan profile {min_ms}-{max_ms}ms +{jitter_ms}ms jitter",
    )


def slow_disk_policy(
    n_sites: int, fsync_delay_ms: float = 4.0, seed: int = 0
) -> ChaosPolicy:
    """Every site's fsync takes ``fsync_delay_ms`` longer.

    Above the DT log's 2 ms EMA threshold this pushes group-commit
    fsyncs off the event loop onto the executor — the adaptive
    placement path that loopback CI never exercises.
    """
    return ChaosPolicy(
        seed=seed,
        disk=tuple((site, fsync_delay_ms) for site in range(1, n_sites + 1)),
        note=f"slow disks +{fsync_delay_ms}ms fsync",
    )


def gray_link_policy(seed: int = 0, coordinator: int = 1) -> ChaosPolicy:
    """The packaged reliable-detector violation for 3 sites.

    The schedule that drives central 3PC into a split decision:

    * Links out of the coordinator keep delivering until the
      vote-request (``xact``) goes out, then silently stop carrying
      heartbeats — both participants eventually suspect a coordinator
      that is still running.
    * The coordinator-to-site-3 link additionally drops ``prepare``,
      so site 3 is stranded in its wait state while site 2 advances to
      prepared.
    * The participant-to-participant links go dark after first
      contact, so each participant ends up alone and runs the
      termination protocol solo: ``rule(p) = COMMIT`` at site 2,
      ``rule(w) = ABORT`` at site 3.  Split decision; AC1 violated.

    Links *into* the coordinator stay clean: the coordinator never
    suspects anyone, showcasing how asymmetric gray loss breaks the
    "suspected iff down" assumption in both directions at once.
    """
    c = int(coordinator)
    others = sorted(set(range(1, 4)) - {c})
    p2, p3 = others
    rules = (
        # Heartbeats from the coordinator die once the txn is in flight.
        ChaosRule(src=c, dst=p2, kinds=("@hb",), drop=1.0,
                  after_kind="xact", after_count=1),
        ChaosRule(src=c, dst=p3, kinds=("@hb",), drop=1.0,
                  after_kind="xact", after_count=1),
        # Site p3 never learns the cohort prepared.
        ChaosRule(src=c, dst=p3, kinds=("prepare",), drop=1.0),
        # Participants lose each other after first contact.
        ChaosRule(src=p2, dst=p3, drop=1.0, after_count=1),
        ChaosRule(src=p3, dst=p2, drop=1.0, after_count=1),
    )
    return ChaosPolicy(
        seed=seed,
        links=rules,
        note=(
            f"gray links: hb-only loss out of coordinator {c}, "
            f"prepare dropped to site {p3}, participants partitioned"
        ),
    )
