"""Continuous atomicity audit over a live cluster's durable artifacts.

The commit protocols' whole contract is one predicate — AC1, *all
sites that decide reach the same decision* — plus the write-ahead
timeline that makes the decision recoverable.  The simulator checks
this inline on every schedule; the live runtime needs the same check
against what actually hit the disks.  :func:`audit_data_dir` reads the
per-site DT logs (and, advisorily, the traces) under one data
directory and verifies:

* **log integrity** — every surviving record passes its CRC; a corrupt
  record anywhere but the torn tail is a violation, a torn tail is a
  note (that is the crash model working as designed);
* **per-site timeline** — at one site a transaction's records appear
  write-ahead order: no vote after a decision, at most one decision
  outcome, and never a ``no`` vote followed by a ``commit`` (the
  paper's rule that a No voter aborts unilaterally);
* **AC1 across sites** — the union of durable decision outcomes per
  transaction is single-valued: no transaction is committed at one
  site and aborted at another;
* **trace consistency** (advisory) — ``txn.decided`` events across
  site traces never disagree for one transaction.  Traces are
  lossy-by-design (block-buffered, torn by ``kill -9``), so a missing
  trace event is never a violation — only a *contradicting* one is.

The audit is re-runnable while a cluster is live: DT logs are
append-only and every prefix of them must already satisfy the
invariants, so the CLI's ``--watch`` mode simply re-reads on an
interval and exits nonzero the moment a violation appears.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Union

from repro.errors import LiveConfigError, WALError
from repro.live.dtlog import read_log_file
from repro.live.stitch import load_site_traces

#: Record kinds whose relative order the timeline check constrains.
_VOTE, _DECISION = "vote", "decision"


@dataclasses.dataclass
class AuditReport:
    """Everything one audit pass established.

    Attributes:
        violations: Human-readable invariant breaches (empty = clean).
        notes: Expected-damage observations (torn tails, malformed
            trace lines) that are not violations.
        sites: Site ids whose DT logs were read.
        txns: Distinct transactions seen across all logs.
        decisions: Total durable decision records read.
    """

    violations: list[str] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)
    sites: list[int] = dataclasses.field(default_factory=list)
    txns: int = 0
    decisions: int = 0

    def ok(self) -> bool:
        """Whether every checked invariant held."""
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the CLI's ``--json`` sidecar)."""
        return {
            "ok": self.ok(),
            "violations": list(self.violations),
            "notes": list(self.notes),
            "sites": list(self.sites),
            "txns": self.txns,
            "decisions": self.decisions,
        }


def _audit_site_log(
    site: int, path: Path, report: AuditReport
) -> dict[int, set[str]]:
    """Check one site's log; returns per-txn durable decision outcomes."""
    try:
        bodies, torn = read_log_file(path)
    except WALError as first_error:
        # A reader racing a live appender can catch the file mid-write:
        # what parses as "corruption that is not the tail" may simply be
        # an append that finished (and grew a successor line) between
        # our read and the writer's next flush.  Real corruption is
        # durable — re-read once after a beat; only a *repeatable*
        # parse failure escalates to a violation.
        time.sleep(0.05)
        try:
            bodies, torn = read_log_file(path)
        except WALError as error:
            report.violations.append(f"site {site}: corrupt DT log: {error}")
            return {}
        report.notes.append(
            f"site {site}: transient mid-append read, clean on retry "
            f"({first_error})"
        )
    if torn:
        report.notes.append(
            f"site {site}: torn tail record dropped (crash mid-append)"
        )
    decided: dict[int, set[str]] = {}
    voted_no: set[int] = set()
    for body in bodies:
        kind = body.get("r")
        if kind not in (_VOTE, _DECISION):
            continue  # boot records carry no per-txn semantics
        txn = int(body["txn"])
        if kind == _VOTE:
            if txn in decided:
                report.violations.append(
                    f"site {site} txn {txn}: vote record after a decision "
                    "record (write-ahead timeline violated)"
                )
            if body.get("vote") == "no":
                voted_no.add(txn)
            continue
        outcome = str(body.get("outcome"))
        report.decisions += 1
        outcomes = decided.setdefault(txn, set())
        if outcomes and outcome not in outcomes:
            report.violations.append(
                f"site {site} txn {txn}: conflicting decision records "
                f"({sorted(outcomes | {outcome})})"
            )
        outcomes.add(outcome)
        if outcome == "commit" and txn in voted_no:
            report.violations.append(
                f"site {site} txn {txn}: committed after voting no"
            )
    return decided


def _audit_traces(data_dir: Path, report: AuditReport) -> None:
    """Advisory cross-check of ``txn.decided`` events in site traces."""
    try:
        logs = load_site_traces(data_dir)
    except LiveConfigError:
        return  # No traces yet — nothing to cross-check.
    trace_outcomes: dict[int, dict[str, list[int]]] = {}
    for site, log in logs.items():
        if log.malformed:
            report.notes.append(
                f"site {site}: {log.malformed} torn/malformed trace line(s) "
                "skipped"
            )
        for entry in log.select("txn.decided"):
            txn = entry.data.get("txn")
            outcome = entry.data.get("outcome")
            if txn is None or outcome not in ("commit", "abort"):
                continue
            trace_outcomes.setdefault(int(txn), {}).setdefault(
                str(outcome), []
            ).append(site)
    for txn, outcomes in sorted(trace_outcomes.items()):
        if len(outcomes) > 1:
            where = {
                outcome: sorted(set(sites))
                for outcome, sites in sorted(outcomes.items())
            }
            report.violations.append(
                f"txn {txn}: traces disagree on the decision: {where}"
            )


def _audit_trace_drops(data_dir: Path, report: AuditReport) -> None:
    """Note any site whose trace ring hit its ``--trace-cap``.

    Dropped trace entries are by design (the cap bounds disk use on
    long soaks), but the trace cross-check then covers only a prefix
    of the run — worth a note so a "clean" audit is read with that
    caveat.  Metrics snapshots are advisory observability; a missing
    or torn snapshot is not a finding.
    """
    for path in sorted(data_dir.glob("site-*.metrics.json")):
        try:
            live = json.loads(path.read_text()).get("live", {})
        except (OSError, ValueError):
            continue
        dropped = int(live.get("trace_dropped") or 0)
        if dropped:
            site = live.get(
                "site", path.name.split("-", 1)[1].split(".", 1)[0]
            )
            report.notes.append(
                f"site {site}: {dropped} trace entries dropped at the "
                "trace cap; trace cross-checks cover a prefix of the run"
            )


def audit_data_dir(
    data_dir: Union[str, Path], include_traces: bool = True
) -> AuditReport:
    """Audit every site DT log (and trace) under one data directory.

    Raises:
        LiveConfigError: If the directory holds no ``site-*.dtlog``
            files — auditing nothing is a configuration error, not a
            clean pass.
    """
    data_dir = Path(data_dir)
    paths = sorted(data_dir.glob("site-*.dtlog"))
    if not paths:
        raise LiveConfigError(f"no site-*.dtlog files under {data_dir}")
    report = AuditReport()
    txns: set[int] = set()
    cluster: dict[int, dict[str, list[int]]] = {}
    for path in paths:
        site = int(path.name.split("-", 1)[1].split(".", 1)[0])
        report.sites.append(site)
        decided = _audit_site_log(site, path, report)
        txns.update(decided)
        for txn, outcomes in decided.items():
            for outcome in outcomes:
                cluster.setdefault(txn, {}).setdefault(outcome, []).append(site)
    # AC1: all sites that decided a transaction decided the same way.
    for txn, outcomes in sorted(cluster.items()):
        if len(outcomes) > 1:
            where = {
                outcome: sorted(sites)
                for outcome, sites in sorted(outcomes.items())
            }
            report.violations.append(
                f"txn {txn}: AC1 violated — durable decisions disagree "
                f"across sites: {where}"
            )
    report.txns = len(txns)
    if include_traces:
        _audit_traces(data_dir, report)
        _audit_trace_drops(data_dir, report)
    return report
