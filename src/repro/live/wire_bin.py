"""The packed binary wire codec for peer links.

Same frame boundary as :mod:`repro.live.wire` — a 4-byte big-endian
length prefix — but the body is a struct-packed record instead of
sorted-key JSON.  Only the three peer-link frame types exist in binary
form (``hb``, ``payload``, ``external``); the ``hello`` handshake and
all client traffic stay JSON, which is what makes per-connection codec
negotiation possible: every connection opens with a JSON hello, and its
``codec`` field announces how the *rest of that connection's* frames
are encoded.  Each direction of a peer pair is its own TCP connection,
so a JSON site and a binary site interoperate — each side decodes what
the other announced.

Body layout (after the length prefix)::

    u8  kind     1 = hb, 2 = payload, 3 = external
    u8  flags    bit0 txn, bit1 sid, bit2 pid, bit3 dst_boot
    u64 ...      the flagged fields, big-endian, in bit order
    ...          kind-specific tail

Tails: ``hb`` carries a ``u32`` site id; ``external`` carries its kind
as a string; ``payload`` carries a tagged record per runtime payload
dataclass (``u8`` tag, then fixed-width ints, outcome bytes, and
strings).  Strings use a one-byte token into :data:`INTERNED` — the
closed vocabulary of protocol message kinds and state names — with
token ``0`` escaping to ``u16`` length + UTF-8 for anything else, so
the codec never constrains what a spec may name.

Decoding is strict and zero-copy (``memoryview`` slices, no
intermediate buffers): unknown kinds, tags, tokens or flag bits,
truncated fields, trailing bytes, zero-length frames, and oversized
length prefixes all raise :class:`~repro.errors.FrameError`.  Decoded
frames are *dict-identical* to what the JSON codec would have produced
for the same frame — the equality the differential test suite pins —
so every layer above the transport (chaos classification, incarnation
fencing, trace stitching, audit) is codec-blind.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Union

from repro.errors import FrameError
from repro.live.wire import MAX_FRAME, FrameDecoder, encode_frame

#: Codec names as they appear in ``hello`` frames and ``--codec`` flags.
CODEC_JSON = "json"
CODEC_BIN = "bin"
CODECS = (CODEC_JSON, CODEC_BIN)

_LENGTH = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")

# Frame kinds.
_K_HB = 1
_K_PAYLOAD = 2
_K_EXTERNAL = 3

# Header flag bits, in wire order.
_FLAG_FIELDS = ((1, "txn"), (2, "sid"), (4, "pid"), (8, "dst_boot"))
_KNOWN_FLAGS = 0x0F

#: The closed string vocabulary of the catalog protocols: message
#: kinds and state names.  Tokens are 1-based; 0 escapes to a literal.
INTERNED = (
    "q",
    "w",
    "p",
    "a",
    "c",
    "request",
    "xact",
    "yes",
    "no",
    "ack",
    "prepare",
    "commit",
    "abort",
    # Appended entries only (tokens are pinned by differential tests
    # against recorded frames): the read-only vote/state of the
    # one-phase exit.
    "ro",
    "r",
)
_STR_TOKEN = {value: index + 1 for index, value in enumerate(INTERNED)}
_TOKEN_STR: tuple = (None,) + INTERNED

_OUTCOME_CODE = {"commit": 1, "abort": 2, "undecided": 3, "blocked": 4}
_CODE_OUTCOME: tuple = (None, "commit", "abort", "undecided", "blocked")

_HB_REQUIRED = frozenset({"t", "site"})
_PAYLOAD_REQUIRED = frozenset({"t", "txn", "d"})
_EXTERNAL_REQUIRED = frozenset({"t", "txn", "kind"})
_OPTIONAL = frozenset({"sid", "pid", "dst_boot"})
_NO_OPTIONAL: frozenset = frozenset()


# ----------------------------------------------------------------------
# Field packers
# ----------------------------------------------------------------------


def _require_int(value: Any, field: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise FrameError(
            f"field {field!r} must be an int for the binary codec, "
            f"got {type(value).__name__}"
        )
    return value


def _pack_u64(out: bytearray, value: Any, field: str) -> None:
    try:
        out += _U64.pack(_require_int(value, field))
    except struct.error as error:
        raise FrameError(f"field {field!r} out of u64 range: {value}") from error


def _pack_u32(out: bytearray, value: Any, field: str) -> None:
    try:
        out += _U32.pack(_require_int(value, field))
    except struct.error as error:
        raise FrameError(f"field {field!r} out of u32 range: {value}") from error


def _pack_str(out: bytearray, value: Any, field: str) -> None:
    if not isinstance(value, str):
        raise FrameError(
            f"field {field!r} must be a string for the binary codec, "
            f"got {type(value).__name__}"
        )
    token = _STR_TOKEN.get(value)
    if token is not None:
        out.append(token)
        return
    data = value.encode("utf-8")
    if len(data) > 0xFFFF:
        raise FrameError(f"field {field!r} string of {len(data)} bytes too long")
    out.append(0)
    out += _U16.pack(len(data))
    out += data


def _pack_outcome(out: bytearray, value: Any, field: str, extra: int = 0) -> None:
    code = _OUTCOME_CODE.get(value)
    if code is None:
        raise FrameError(f"field {field!r} is not an outcome: {value!r}")
    out.append(code | extra)


# ----------------------------------------------------------------------
# Payload record codecs (tag = position in wire.py's codec tables)
# ----------------------------------------------------------------------


def _enc_proto(out: bytearray, d: dict) -> None:
    out.append(1)
    _pack_str(out, d["kind"], "kind")


def _enc_move_to(out: bytearray, d: dict) -> None:
    out.append(2)
    _pack_u32(out, d["backup"], "backup")
    _pack_u32(out, d["round"], "round")
    _pack_str(out, d["state"], "state")


def _enc_ack(out: bytearray, d: dict) -> None:
    out.append(3)
    _pack_u32(out, d["round"], "round")


def _enc_decision(out: bytearray, d: dict) -> None:
    out.append(4)
    _pack_outcome(out, d["outcome"], "outcome")
    _pack_u32(out, d["round"], "round")


def _enc_blocked(out: bytearray, d: dict) -> None:
    out.append(5)
    _pack_u32(out, d["round"], "round")


def _enc_state_query(out: bytearray, d: dict) -> None:
    out.append(6)
    _pack_u32(out, d["backup"], "backup")
    _pack_u32(out, d["round"], "round")


def _enc_state_reply(out: bytearray, d: dict) -> None:
    out.append(7)
    _pack_outcome(out, d["outcome"], "outcome")
    _pack_u32(out, d["round"], "round")
    _pack_str(out, d["state"], "state")


def _enc_outcome_query(out: bytearray, d: dict) -> None:
    out.append(8)


def _enc_outcome_reply(out: bytearray, d: dict) -> None:
    in_doubt = d["in_doubt"]
    if not isinstance(in_doubt, bool):
        raise FrameError(
            f"field 'in_doubt' must be a bool for the binary codec, "
            f"got {type(in_doubt).__name__}"
        )
    out.append(9)
    _pack_outcome(out, d["outcome"], "outcome", extra=0x80 if in_doubt else 0)


#: tag name -> (exact key set, encoder).
_PAYLOAD_ENC: dict[str, tuple[frozenset, Callable[[bytearray, dict], None]]] = {
    "proto": (frozenset({"p", "kind"}), _enc_proto),
    "term-move-to": (frozenset({"p", "backup", "state", "round"}), _enc_move_to),
    "term-ack": (frozenset({"p", "round"}), _enc_ack),
    "term-decision": (frozenset({"p", "outcome", "round"}), _enc_decision),
    "term-blocked": (frozenset({"p", "round"}), _enc_blocked),
    "term-state-query": (frozenset({"p", "backup", "round"}), _enc_state_query),
    "term-state-reply": (
        frozenset({"p", "state", "outcome", "round"}),
        _enc_state_reply,
    ),
    "outcome-query": (frozenset({"p"}), _enc_outcome_query),
    "outcome-reply": (frozenset({"p", "outcome", "in_doubt"}), _enc_outcome_reply),
}


def _encode_payload_dict(out: bytearray, data: Any) -> None:
    if not isinstance(data, dict):
        raise FrameError(
            f"payload body must be a dict, got {type(data).__name__}"
        )
    tag = data.get("p")
    spec = _PAYLOAD_ENC.get(tag)
    if spec is None:
        raise FrameError(f"unknown payload tag {tag!r}")
    expected, encoder = spec
    if data.keys() != expected:
        raise FrameError(
            f"payload {tag!r} keys {sorted(data)} do not match the "
            f"binary schema {sorted(expected)}"
        )
    encoder(out, data)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode_head(
    kind: int, frame: dict[str, Any], required: frozenset, optional: frozenset
) -> bytearray:
    keys = frame.keys()
    missing = required - keys
    if missing:
        raise FrameError(
            f"frame {frame.get('t')!r} missing keys {sorted(missing)}"
        )
    extra = keys - required - optional
    if extra:
        raise FrameError(
            f"frame keys {sorted(extra)} are not representable in the "
            "binary codec"
        )
    flags = 0
    ints = bytearray()
    for bit, field in _FLAG_FIELDS:
        value = frame.get(field)
        if value is None:
            continue
        flags |= bit
        _pack_u64(ints, value, field)
    body = bytearray((kind, flags))
    body += ints
    return body


def encode_frame_bin(frame: dict[str, Any]) -> bytes:
    """Serialize one peer-link frame in the packed binary format.

    Raises:
        FrameError: If the frame type has no binary form (hello and
            client frames are JSON-only), carries keys or values the
            binary schema cannot represent, or exceeds
            :data:`~repro.live.wire.MAX_FRAME`.
    """
    t = frame.get("t")
    if t == "payload":
        body = _encode_head(_K_PAYLOAD, frame, _PAYLOAD_REQUIRED, _OPTIONAL)
        _encode_payload_dict(body, frame["d"])
    elif t == "hb":
        body = _encode_head(_K_HB, frame, _HB_REQUIRED, _NO_OPTIONAL)
        _pack_u32(body, frame["site"], "site")
    elif t == "external":
        body = _encode_head(_K_EXTERNAL, frame, _EXTERNAL_REQUIRED, _OPTIONAL)
        _pack_str(body, frame["kind"], "kind")
    else:
        raise FrameError(
            f"frame type {t!r} has no binary encoding (the binary codec "
            "carries peer-link frames only)"
        )
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _LENGTH.pack(len(body)) + bytes(body)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _unpack_u32(view: memoryview, offset: int, field: str) -> tuple[int, int]:
    if offset + 4 > len(view):
        raise FrameError(f"binary frame truncated in field {field!r}")
    (value,) = _U32.unpack_from(view, offset)
    return value, offset + 4


def _unpack_str(view: memoryview, offset: int, field: str) -> tuple[str, int]:
    if offset >= len(view):
        raise FrameError(f"binary frame truncated in field {field!r}")
    token = view[offset]
    offset += 1
    if token:
        if token >= len(_TOKEN_STR):
            raise FrameError(f"unknown interned string token {token}")
        return _TOKEN_STR[token], offset
    if offset + 2 > len(view):
        raise FrameError(f"binary frame truncated in field {field!r}")
    (length,) = _U16.unpack_from(view, offset)
    offset += 2
    end = offset + length
    if end > len(view):
        raise FrameError(f"binary frame truncated in field {field!r}")
    try:
        value = bytes(view[offset:end]).decode("utf-8")
    except UnicodeDecodeError as error:
        raise FrameError(f"field {field!r} is not valid UTF-8") from error
    return value, end


def _unpack_outcome(
    view: memoryview, offset: int, field: str
) -> tuple[str, bool, int]:
    if offset >= len(view):
        raise FrameError(f"binary frame truncated in field {field!r}")
    byte = view[offset]
    code = byte & 0x7F
    if not 1 <= code < len(_CODE_OUTCOME):
        raise FrameError(f"field {field!r} has no outcome for byte {byte:#x}")
    return _CODE_OUTCOME[code], bool(byte & 0x80), offset + 1


def _dec_proto(view: memoryview, offset: int) -> tuple[dict, int]:
    kind, offset = _unpack_str(view, offset, "kind")
    return {"p": "proto", "kind": kind}, offset


def _dec_move_to(view: memoryview, offset: int) -> tuple[dict, int]:
    backup, offset = _unpack_u32(view, offset, "backup")
    round_no, offset = _unpack_u32(view, offset, "round")
    state, offset = _unpack_str(view, offset, "state")
    return (
        {"p": "term-move-to", "backup": backup, "state": state, "round": round_no},
        offset,
    )


def _dec_ack(view: memoryview, offset: int) -> tuple[dict, int]:
    round_no, offset = _unpack_u32(view, offset, "round")
    return {"p": "term-ack", "round": round_no}, offset


def _dec_decision(view: memoryview, offset: int) -> tuple[dict, int]:
    outcome, extra, offset = _unpack_outcome(view, offset, "outcome")
    if extra:
        raise FrameError("term-decision outcome byte has stray high bit")
    round_no, offset = _unpack_u32(view, offset, "round")
    return {"p": "term-decision", "outcome": outcome, "round": round_no}, offset


def _dec_blocked(view: memoryview, offset: int) -> tuple[dict, int]:
    round_no, offset = _unpack_u32(view, offset, "round")
    return {"p": "term-blocked", "round": round_no}, offset


def _dec_state_query(view: memoryview, offset: int) -> tuple[dict, int]:
    backup, offset = _unpack_u32(view, offset, "backup")
    round_no, offset = _unpack_u32(view, offset, "round")
    return {"p": "term-state-query", "backup": backup, "round": round_no}, offset


def _dec_state_reply(view: memoryview, offset: int) -> tuple[dict, int]:
    outcome, extra, offset = _unpack_outcome(view, offset, "outcome")
    if extra:
        raise FrameError("term-state-reply outcome byte has stray high bit")
    round_no, offset = _unpack_u32(view, offset, "round")
    state, offset = _unpack_str(view, offset, "state")
    return (
        {"p": "term-state-reply", "state": state, "outcome": outcome, "round": round_no},
        offset,
    )


def _dec_outcome_query(view: memoryview, offset: int) -> tuple[dict, int]:
    return {"p": "outcome-query"}, offset


def _dec_outcome_reply(view: memoryview, offset: int) -> tuple[dict, int]:
    outcome, in_doubt, offset = _unpack_outcome(view, offset, "outcome")
    return {"p": "outcome-reply", "outcome": outcome, "in_doubt": in_doubt}, offset


_PAYLOAD_DEC: tuple = (
    None,
    _dec_proto,
    _dec_move_to,
    _dec_ack,
    _dec_decision,
    _dec_blocked,
    _dec_state_query,
    _dec_state_reply,
    _dec_outcome_query,
    _dec_outcome_reply,
)


def _decode_body(view: memoryview) -> dict[str, Any]:
    """Decode one binary frame body; strict, zero-copy."""
    if len(view) < 2:
        raise FrameError("binary frame shorter than its two-byte header")
    kind = view[0]
    flags = view[1]
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"binary frame has unknown flag bits {flags:#x}")
    offset = 2
    head: dict[str, Any] = {}
    for bit, field in _FLAG_FIELDS:
        if not flags & bit:
            continue
        if offset + 8 > len(view):
            raise FrameError(f"binary frame truncated in field {field!r}")
        (head[field],) = _U64.unpack_from(view, offset)
        offset += 8
    if kind == _K_PAYLOAD:
        frame: dict[str, Any] = {"t": "payload", **head}
        if offset >= len(view):
            raise FrameError("binary payload frame has no payload record")
        tag = view[offset]
        offset += 1
        if not 1 <= tag < len(_PAYLOAD_DEC):
            raise FrameError(f"unknown binary payload tag {tag}")
        frame["d"], offset = _PAYLOAD_DEC[tag](view, offset)
    elif kind == _K_HB:
        site, offset = _unpack_u32(view, offset, "site")
        frame = {"t": "hb", "site": site, **head}
    elif kind == _K_EXTERNAL:
        frame = {"t": "external", **head}
        frame["kind"], offset = _unpack_str(view, offset, "kind")
    else:
        raise FrameError(f"unknown binary frame kind {kind}")
    if offset != len(view):
        raise FrameError(
            f"binary frame has {len(view) - offset} trailing bytes"
        )
    return frame


class BinFrameDecoder:
    """Incremental binary-frame decoder, drop-in for ``FrameDecoder``.

    Same feed/pending/hwm surface as the JSON decoder so the transport's
    receive loop is codec-blind; bodies are decoded through a
    ``memoryview`` of the receive buffer without copying the frame out
    first.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        #: Largest buffered byte count ever observed (monotonic).
        self.hwm = 0

    @property
    def pending(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Append bytes; return every frame completed by them, in order.

        Raises:
            FrameError: On a zero-length or oversized length prefix, or
                a body the binary schema rejects.
        """
        buf = self._buf
        buf += data
        if len(buf) > self.hwm:
            self.hwm = len(buf)
        frames: list[dict[str, Any]] = []
        offset = 0
        view = memoryview(buf)
        try:
            while len(buf) - offset >= _LENGTH.size:
                (length,) = _LENGTH.unpack_from(view, offset)
                if length == 0:
                    raise FrameError("zero-length frame is malformed")
                if length > MAX_FRAME:
                    raise FrameError(f"length prefix {length} exceeds MAX_FRAME")
                end = offset + _LENGTH.size + length
                if len(buf) < end:
                    break
                body = view[offset + _LENGTH.size : end]
                try:
                    frames.append(_decode_body(body))
                finally:
                    body.release()
                offset = end
        finally:
            view.release()
            if offset:
                del buf[:offset]
        return frames


def decode_frame_bin_bytes(data: bytes) -> tuple[dict[str, Any], bytes]:
    """Synchronous single-frame decode; returns (frame, remaining bytes).

    The test-facing inverse of :func:`encode_frame_bin`.

    Raises:
        FrameError: On truncation or a malformed body.
    """
    if len(data) < _LENGTH.size:
        raise FrameError("buffer shorter than a length prefix")
    (length,) = _LENGTH.unpack_from(data, 0)
    if length == 0:
        raise FrameError("zero-length frame is malformed")
    if length > MAX_FRAME:
        raise FrameError(f"length prefix {length} exceeds MAX_FRAME")
    end = _LENGTH.size + length
    if len(data) < end:
        raise FrameError(
            f"truncated frame ({len(data) - _LENGTH.size}/{length} bytes)"
        )
    frame = _decode_body(memoryview(data)[_LENGTH.size : end])
    return frame, data[end:]


# ----------------------------------------------------------------------
# Codec registry (the transport's one switch point)
# ----------------------------------------------------------------------

WireDecoder = Union[FrameDecoder, BinFrameDecoder]


def frame_encoder_for(codec: str) -> Callable[[dict[str, Any]], bytes]:
    """The per-frame encoder a sender uses for its announced codec.

    Raises:
        FrameError: On an unknown codec name.
    """
    if codec == CODEC_JSON:
        return encode_frame
    if codec == CODEC_BIN:
        return encode_frame_bin
    raise FrameError(f"unknown wire codec {codec!r}")


def frame_decoder_for(codec: str) -> WireDecoder:
    """A fresh incremental decoder for one inbound connection.

    Raises:
        FrameError: On an unknown codec name.
    """
    if codec == CODEC_JSON:
        return FrameDecoder()
    if codec == CODEC_BIN:
        return BinFrameDecoder()
    raise FrameError(f"unknown wire codec {codec!r}")
