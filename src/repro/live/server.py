"""The ``repro serve`` process body: run one live site until told to stop.

This is what the cluster harness spawns N times.  The process is
intentionally boring — build a :class:`~repro.live.node.LiveSite`, run
it, exit with the :mod:`repro.errors` exit code of whatever stopped it.
``SIGTERM``/``SIGINT`` trigger a graceful stop (flush metrics, close
the DT log); ``SIGKILL`` is the *point* of the exercise and gets no
handler — the durable log and the recovery protocol are what make it
survivable.
"""

from __future__ import annotations

import asyncio
import gc
import signal
import sys

from repro.errors import LiveConfigError, exit_code
from repro.live.node import LiveConfig, LiveSite


def _runner(loop_name: str):
    """Resolve the ``asyncio.run``-compatible runner for a loop choice.

    ``uvloop`` is an optional accelerator: it is used only when the
    interpreter already has it installed.  Asking for it without the
    package is a configuration error (exit ``EXIT_CONFIG``), not a
    silent fallback — benchmark sidecars record the loop that actually
    ran, and a fallback would make that a lie.
    """
    if loop_name == "asyncio":
        return asyncio.run
    try:
        import uvloop
    except ImportError as error:
        raise LiveConfigError(
            "loop 'uvloop' requested but uvloop is not installed"
        ) from error
    return uvloop.run


async def run_site(config: LiveConfig) -> None:
    """Run one live site until its shutdown event fires."""
    # Server-process gc tuning: move boot-time objects (specs, codecs,
    # the site itself) out of the collector's reach and widen the
    # gen-0 threshold so cycle sweeps don't run every few transactions
    # under concurrent load.  Collection still happens — just not on
    # the per-transaction path.
    gc.collect()
    gc.freeze()
    gc.set_threshold(50_000, 25, 25)
    site = LiveSite(config)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, site.shutdown.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await site.run()


def serve(config: LiveConfig) -> int:
    """Blocking wrapper: run the site, map failures to exit codes."""
    try:
        _runner(config.loop)(run_site(config))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    except Exception as error:  # noqa: BLE001 - process boundary
        print(f"repro serve: {type(error).__name__}: {error}", file=sys.stderr)
        return exit_code(error)
    return 0
