"""Asyncio TCP mesh between the sites of one live cluster.

Each site runs one :class:`Transport`: a listening socket plus one
*outgoing* connection per peer.  A connection's first frame says what
it is — peers introduce themselves with ``hello`` (their frames are
routed to the site's frame handler), anything else is a client and is
handed to the client handler with its first frame.  Each direction of
a peer pair therefore uses its own TCP connection, which keeps the
dialing rule trivial (everybody dials everybody) and reconnection
independent per direction.

Failure detection is heartbeat-timeout suspicion: every peer's
outgoing connection carries periodic ``hb`` frames, and a peer from
whom nothing (heartbeat or otherwise) has arrived for ``suspect_after``
seconds is *suspected*.  Unlike the simulator's reliable detector this
one can be wrong — which is the point: the live runtime demonstrates
the protocols under the detector the paper actually assumes away.
Any frame from a suspected peer clears the suspicion and fires the
recovery callback, which is how survivors notice a ``kill -9``-ed site
returning.

Outgoing frames are buffered per peer and survive reconnects: a frame
is only dropped from the outbox after the socket write for it drained.
``flush`` awaits empty outboxes — the crash injector uses it to make
"killed right after the broadcast left" deterministic.

Two throughput mechanisms ride on the outbox:

* **Durability barriers** — a frame may carry the DT-log LSN it
  depends on (its site's vote/decision record); the sender awaits the
  store's durability watermark before letting the frame reach the
  socket.  This is what lets the group-commit log buffer forced
  records without ever weakening the write-ahead rule: the record is
  on the platter before any peer can see a message implying it.
* **Frame coalescing** — everything queued (and durable) for a peer is
  written in one ``writer.write`` per drain cycle.  Length-prefixed
  frames self-delimit, so concatenation is free; ``socket_writes`` vs
  ``frames_sent`` measures the syscall amortization.
"""

from __future__ import annotations

import asyncio
import collections
import socket
from typing import Any, Awaitable, Callable, Optional

from repro.errors import LiveTimeoutError, TransportError
from repro.live.chaos import LinkChaos
from repro.live.clock import TimeoutClock
from repro.live.wire import encode_frame, read_frame
from repro.live.wire_bin import (
    CODEC_JSON,
    CODECS,
    frame_decoder_for,
    frame_encoder_for,
)
from repro.types import SiteId

#: Reconnect backoff: start fast (loopback restarts are quick), cap low.
RECONNECT_MIN = 0.05
RECONNECT_MAX = 1.0


def set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle on a stream's socket (best-effort).

    Commit protocols are request/reply chains of small frames; letting
    the kernel hold a vote back waiting for more data only adds
    round-trip latency.  The transport already coalesces frames into
    large writes itself, so Nagle buys nothing here.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP or closed socket
            pass

#: Upper bound on frames coalesced into one socket write.  Far above
#: anything the commit protocols queue per drain cycle; it only bounds
#: the size of a single write after a long reconnect backlog.
MAX_COALESCE = 256

#: Awaits until the site's DT log is durable up to the given LSN.
DurabilityGate = Callable[[int], Awaitable[None]]

#: An async callback receiving (peer id, frame).
FrameHandler = Callable[[SiteId, dict[str, Any]], Awaitable[None]]

#: An async callback receiving (first frame, reader, writer) of a
#: client connection; the handler owns the connection afterwards.
ClientHandler = Callable[
    [dict[str, Any], asyncio.StreamReader, asyncio.StreamWriter],
    Awaitable[None],
]


class Transport:
    """One site's TCP endpoint: server, peer mesh, failure suspicion.

    Args:
        site: This site's id.
        host: Interface to bind and advertise.
        port: Listening port.
        peers: Peer id → (host, port) of every *other* site.
        clock: The wall clock (shared with the protocol controllers so
            suspicion and protocol timers agree on time).
        on_frame: Handler for frames arriving from peers.
        on_client: Handler for client connections.
        on_suspect / on_recover: Failure-detector callbacks (sync).
        on_restart: Called when a peer's hello carries a higher boot
            incarnation than previously seen — the peer crashed and
            came back, even if it beat the heartbeat detector.
        boot: This site's own boot incarnation, advertised in hellos.
        hb_interval: Heartbeat period, seconds.
        suspect_after: Silence threshold before suspecting a peer.
        trace: Trace sink ``(category, detail, **data)``.
        wait_durable: Optional durability gate — frames queued with a
            nonzero barrier LSN are held until this resolves for it.
        chaos: Optional receive-side chaos engine.  When it has rules
            for this site, every inbound peer frame (except the hello
            handshake) is classified and may be dropped (no liveness
            credit, traced ``net.drop`` if it carried a span) or
            delayed (delivered later, FIFO per link, carrying its
            original socket-arrival stamp).
    """

    def __init__(
        self,
        site: SiteId,
        host: str,
        port: int,
        peers: dict[SiteId, tuple[str, int]],
        clock: TimeoutClock,
        on_frame: FrameHandler,
        on_client: ClientHandler,
        on_suspect: Callable[[SiteId], None],
        on_recover: Callable[[SiteId], None],
        on_restart: Optional[Callable[[SiteId], None]] = None,
        boot: int = 1,
        hb_interval: float = 0.25,
        suspect_after: float = 1.5,
        trace: Callable[..., None] = lambda *a, **k: None,
        wait_durable: Optional[DurabilityGate] = None,
        chaos: Optional[LinkChaos] = None,
        codec: str = CODEC_JSON,
    ) -> None:
        if site in peers:
            raise TransportError(f"site {site} cannot be its own peer")
        if codec not in CODECS:
            raise TransportError(
                f"unknown wire codec {codec!r} (choose from {', '.join(CODECS)})"
            )
        self.site = site
        self.host = host
        self.port = port
        #: Wire codec for *outgoing* peer frames, announced in hellos.
        #: Inbound connections are decoded per what the peer announced,
        #: so mixed-codec clusters interoperate per direction.
        self.codec = codec
        self._encode_peer = frame_encoder_for(codec)
        self.peers = dict(peers)
        self.clock = clock
        self.boot = int(boot)
        self.hb_interval = hb_interval
        self.suspect_after = suspect_after
        self._on_frame = on_frame
        self._on_client = on_client
        self._on_suspect = on_suspect
        self._on_recover = on_recover
        self._on_restart = on_restart
        self._trace = trace
        self._wait_durable = wait_durable

        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: list[asyncio.Task] = []
        #: Per-peer queue of (encoded frame, durability-barrier LSN).
        self._outbox: dict[SiteId, collections.deque[tuple[bytes, int]]] = {
            peer: collections.deque() for peer in peers
        }
        self._outbox_ready: dict[SiteId, asyncio.Event] = {}
        self._writers: dict[SiteId, asyncio.StreamWriter] = {}
        #: Wall time of the last frame seen from each peer (None: never).
        self.last_seen: dict[SiteId, Optional[float]] = {p: None for p in peers}
        self.suspected: set[SiteId] = set()
        #: When each current suspicion was raised — the suspicion
        #: *epoch*.  Only evidence of life *newer* than the epoch may
        #: clear a suspicion; a long-delayed frame stamped before it is
        #: stale and proves nothing about the peer now.
        self.suspected_at: dict[SiteId, float] = {}
        #: Flush calls waiting (event-driven) for all outboxes to drain.
        self._flush_waiters: list[asyncio.Future] = []
        #: Receive-side chaos: per-peer FIFO delivery queues and the
        #: latest due time per link (delays never reorder a link).
        self.chaos = chaos if chaos is not None and chaos.active else None
        self._chaos_queues: dict[
            SiteId, asyncio.Queue[tuple[float, float, dict[str, Any]]]
        ] = {}
        self._chaos_due: dict[SiteId, float] = {}
        #: Inbound hello connections accepted per peer, ever.
        self._hello_count: dict[SiteId, int] = {p: 0 for p in peers}
        #: Highest boot incarnation each peer has announced in a hello.
        self._peer_boot: dict[SiteId, int] = {}
        self.frames_sent = 0
        self.frames_received = 0
        self.socket_writes = 0
        #: Successful outgoing re-dials per peer (first dial excluded).
        #: A healthy loopback mesh stays at 0; churn here is the cheap
        #: gray-failure signal (flapping peer, half-open links).
        self.reconnects: dict[SiteId, int] = {p: 0 for p in peers}
        self._dialed: set[SiteId] = set()
        #: Largest receive-side decode buffer ever observed, bytes,
        #: across all inbound peer connections (see FrameDecoder.hwm).
        self.decoder_hwm = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the server and start dialer/heartbeat/monitor tasks."""
        try:
            self._server = await asyncio.start_server(
                self._accept, self.host, self.port
            )
        except OSError as error:
            raise TransportError(
                f"site {self.site} cannot bind {self.host}:{self.port}: {error}"
            ) from error
        self._trace(
            "live.listen", f"site {self.site} listening on {self.host}:{self.port}"
        )
        for peer in self.peers:
            self._outbox_ready[peer] = asyncio.Event()
            if self._outbox[peer]:
                self._outbox_ready[peer].set()
            self._tasks.append(asyncio.create_task(self._peer_sender(peer)))
            if self.chaos is not None:
                queue: asyncio.Queue = asyncio.Queue()
                self._chaos_queues[peer] = queue
                self._tasks.append(
                    asyncio.create_task(self._chaos_delivery_loop(peer, queue))
                )
        self._tasks.append(asyncio.create_task(self._heartbeat_loop()))
        self._tasks.append(asyncio.create_task(self._suspicion_loop()))

    async def stop(self) -> None:
        """Cancel tasks and close every connection (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(
        self,
        dst: SiteId,
        frame: dict[str, Any],
        barrier: int = 0,
        volatile: bool = False,
    ) -> None:
        """Queue one frame for a peer (buffered across reconnects).

        ``barrier`` is the DT-log LSN this frame depends on: the sender
        holds the frame until the log is durable that far (0 = no
        dependency, e.g. heartbeats).  Queue order is preserved, so a
        gated frame also delays later frames to the same peer — FIFO
        per peer is part of the transport contract.

        ``volatile`` marks commit-protocol traffic that must not
        outlive the destination *incarnation* it was addressed to.
        The paper's crash model is that messages to a crashed site are
        lost; replaying a buffered vote-request or begin to a restarted
        incarnation would instead start a fresh engine there for a
        transaction its peers already terminated, which then waits
        forever for votes nobody will send.  Volatile frames are
        stamped with the destination's boot epoch as known *now*; the
        receiver drops any stamped frame addressed to an earlier boot
        than its own.  Termination and recovery payloads stay
        non-volatile — answering those across incarnations is exactly
        how a restarted site rejoins.

        Raises:
            TransportError: If ``dst`` is not a configured peer.
        """
        if dst not in self._outbox:
            raise TransportError(f"site {self.site} has no peer {dst}")
        if volatile:
            frame = {**frame, "dst_boot": self._peer_boot.get(dst, 0)}
        self._outbox[dst].append((self._encode_peer(frame), barrier))
        event = self._outbox_ready.get(dst)
        if event is not None:
            event.set()

    async def flush(self, timeout: float = 5.0) -> None:
        """Wait until every queued frame has drained to its socket.

        Used by the deterministic crash injector: after ``flush``
        returns, everything sent before the call is on the wire (or at
        least in the kernel's send buffer), so killing the process
        cannot retract it.

        Raises:
            LiveTimeoutError: If the outboxes do not drain in time
                (e.g. a peer is unreachable).
        """
        if any(self._outbox.values()):
            # Event-driven wait: senders resolve the waiter when the
            # last outbox drains, and the deadline is a real timer on
            # the clock seam — no polling loop to spin past the
            # deadline or to return between a drain and a re-queue.
            waiter: asyncio.Future[None] = (
                asyncio.get_running_loop().create_future()
            )
            self._flush_waiters.append(waiter)

            def expire() -> None:
                if not waiter.done():
                    stuck = {
                        int(peer): len(queue)
                        for peer, queue in self._outbox.items()
                        if queue
                    }
                    waiter.set_exception(
                        LiveTimeoutError(
                            f"site {self.site} flush timed out with "
                            f"{stuck} queued"
                        )
                    )

            timer = self.clock.call_later(timeout, expire, label="flush")
            try:
                await waiter
            finally:
                timer.cancel()
                if waiter in self._flush_waiters:
                    self._flush_waiters.remove(waiter)
        for writer in list(self._writers.values()):
            try:
                await writer.drain()
            except ConnectionError:
                pass

    def _notify_flush_waiters(self) -> None:
        """Resolve pending flushes once every outbox is empty."""
        if not self._flush_waiters or any(self._outbox.values()):
            return
        waiters, self._flush_waiters = self._flush_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def _peer_sender(self, peer: SiteId) -> None:
        """Own the outgoing connection to one peer: dial, retry, drain."""
        backoff = RECONNECT_MIN
        host, port = self.peers[peer]
        outbox = self._outbox[peer]
        ready = self._outbox_ready[peer]
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, RECONNECT_MAX)
                continue
            set_nodelay(writer)
            backoff = RECONNECT_MIN
            if peer in self._dialed:
                self.reconnects[peer] += 1
            else:
                self._dialed.add(peer)
            self._writers[peer] = writer
            try:
                # The hello is always JSON regardless of codec — it is
                # the negotiation: its ``codec`` field announces how
                # every later frame on this connection is encoded.
                writer.write(
                    encode_frame(
                        {
                            "t": "hello",
                            "site": int(self.site),
                            "boot": self.boot,
                            "codec": self.codec,
                        }
                    )
                )
                await writer.drain()
                while True:
                    if not outbox:
                        ready.clear()
                        await ready.wait()
                    # Collect every queued frame whose durability
                    # barrier is satisfied (awaiting the log where
                    # needed) and write them in ONE syscall — frames
                    # self-delimit, so concatenation is free, and
                    # frames that arrive while we await a barrier
                    # join the same batch.
                    count = 0
                    parts: list[bytes] = []
                    while count < len(outbox) and count < MAX_COALESCE:
                        data, barrier = outbox[count]
                        if barrier and self._wait_durable is not None:
                            await self._wait_durable(barrier)
                        parts.append(data)
                        count += 1
                    writer.write(b"".join(parts))
                    await writer.drain()
                    self.socket_writes += 1
                    # Peek-then-pop: frames leave the outbox only after
                    # their bytes drained, so a connection drop
                    # mid-write re-sends them on the next connection.
                    for _ in range(count):
                        outbox.popleft()
                        self.frames_sent += 1
                    if not outbox:
                        self._notify_flush_waiters()
            except (ConnectionError, OSError):
                pass
            finally:
                if self._writers.get(peer) is writer:
                    del self._writers[peer]
                writer.close()
            await asyncio.sleep(backoff)

    async def _heartbeat_loop(self) -> None:
        while True:
            for peer in self.peers:
                # Don't grow a dead peer's outbox without bound: the
                # queued protocol frames already prove liveness intent.
                if len(self._outbox[peer]) < 64:
                    self.send(peer, {"t": "hb", "site": int(self.site)})
            await asyncio.sleep(self.hb_interval)

    # ------------------------------------------------------------------
    # Failure suspicion
    # ------------------------------------------------------------------

    async def _suspicion_loop(self) -> None:
        interval = max(0.01, self.hb_interval / 2)
        while True:
            now = self.clock.now()
            for peer, seen in self.last_seen.items():
                if seen is None or peer in self.suspected:
                    # Never-seen peers are not suspected: suspicion
                    # starts only after first contact, so a slow-booting
                    # cluster does not open with spurious terminations.
                    continue
                if now - seen > self.suspect_after:
                    self.suspected.add(peer)
                    self.suspected_at[peer] = now
                    self._trace(
                        "live.suspect",
                        f"no frames from site {peer} for {now - seen:.2f}s",
                        peer=int(peer),
                    )
                    self._on_suspect(peer)
            await asyncio.sleep(interval)

    def _saw_peer(self, peer: SiteId, stamp: Optional[float] = None) -> None:
        """Credit liveness evidence stamped at ``stamp`` (default: now).

        ``stamp`` is when the evidence *arrived at the socket*, not
        when chaos delivered it.  A suspicion clears only on evidence
        newer than the suspicion epoch: a frame that was already in
        flight (or chaos-delayed) when the peer went quiet says
        nothing about the peer now, and un-suspecting on it made the
        detector flap against genuinely dark links.
        """
        if stamp is None:
            stamp = self.clock.now()
        seen = self.last_seen.get(peer)
        if seen is None or stamp > seen:
            self.last_seen[peer] = stamp
        if peer in self.suspected:
            epoch = self.suspected_at.get(peer)
            if epoch is not None and stamp <= epoch:
                self._trace(
                    "live.stale_liveness",
                    f"frame from suspected site {peer} predates the "
                    f"suspicion ({stamp:.3f}s <= {epoch:.3f}s); "
                    "staying suspected",
                    peer=int(peer),
                )
                return
            self.suspected.discard(peer)
            self.suspected_at.pop(peer, None)
            self._trace(
                "live.unsuspect", f"site {peer} is back", peer=int(peer)
            )
            self._on_recover(peer)

    def all_peers_seen(self) -> bool:
        """Whether at least one frame arrived from every peer."""
        return all(seen is not None for seen in self.last_seen.values())

    @property
    def chaos_drops(self) -> int:
        """Frames the chaos seam dropped on this site's inbound links."""
        return self.chaos.drops if self.chaos is not None else 0

    @property
    def chaos_delays(self) -> int:
        """Frames the chaos seam delayed on this site's inbound links."""
        return self.chaos.delays if self.chaos is not None else 0

    def operational_sites(self) -> list[SiteId]:
        """This site plus every unsuspected peer (OperationalView seam)."""
        return sorted(
            [self.site] + [p for p in self.peers if p not in self.suspected]
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Classify a new inbound connection by its first frame."""
        set_nodelay(writer)
        try:
            first = await read_frame(reader)
        except TransportError:
            writer.close()
            return
        if first is None:
            writer.close()
            return
        if first.get("t") == "hello":
            codec = str(first.get("codec", CODEC_JSON))
            if codec not in CODECS:
                self._trace(
                    "live.bad_codec",
                    f"hello announcing unknown codec {codec!r}; closing",
                    peer=int(first.get("site", -1)),
                )
                writer.close()
                return
            await self._peer_receiver(
                SiteId(int(first["site"])),
                int(first.get("boot", 1)),
                codec,
                reader,
                writer,
            )
            return
        try:
            await self._on_client(first, reader, writer)
        except (ConnectionError, TransportError):
            writer.close()

    async def _peer_receiver(
        self,
        peer: SiteId,
        boot: int,
        codec: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Pump frames from one peer's inbound connection until EOF."""
        if peer not in self.peers:
            self._trace(
                "live.unknown_peer", f"hello from unknown site {peer}",
                peer=int(peer),
            )
            writer.close()
            return
        # A hello carrying a *higher boot incarnation* than this peer
        # ever announced proves it crashed and restarted — even when
        # the restart was faster than the suspicion threshold, in which
        # case the heartbeat detector never noticed and any frame we
        # wrote to the dead incarnation's socket is silently gone.  The
        # restart callback lets in-flight transactions treat the peer
        # as failed (termination protocol), which is the paper's model:
        # a recovered site rejoins via recovery, not as an operational
        # participant of transactions it may have forgotten mid-flight.
        known_boot = self._peer_boot.get(peer)
        restarted = known_boot is not None and boot > known_boot
        self._peer_boot[peer] = max(boot, known_boot or 0)
        if restarted:
            self._trace(
                "live.peer_restart",
                f"site {peer} came back as boot {boot} (was {known_boot})",
                peer=int(peer),
            )
            if self._on_restart is not None:
                self._on_restart(peer)
        # A *new* hello connection from a peer we already had one from
        # means that peer's sender came back (process restart, or a TCP
        # reconnect).  Fire the recovery callback even when our own
        # detector never got around to suspecting it — a blocked site
        # may learn it is blocked from the termination backup before
        # its own heartbeat timeout, and must still notice the
        # coordinator returning.  Spurious firings (mere reconnects)
        # are harmless: recovery just asks a question the peer answers
        # with "undecided".
        reconnect = self._hello_count[peer] > 0
        self._hello_count[peer] += 1
        suspected_before = peer in self.suspected
        self._saw_peer(peer)  # Fires on_recover when it was suspected.
        if reconnect and not suspected_before:
            self._trace(
                "live.peer_reconnect",
                f"new hello connection from site {peer}",
                peer=int(peer),
            )
            self._on_recover(peer)
        # Read-side coalescing: pull whatever the socket has and split
        # it synchronously — the sender batches frames per write, so
        # one read() often yields a whole batch.  EOF with a partial
        # frame buffered is the same dropped connection as a clean EOF:
        # the sender re-queues undrained frames on reconnect.
        decoder = frame_decoder_for(codec)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                frames = decoder.feed(data)
                if decoder.hwm > self.decoder_hwm:
                    self.decoder_hwm = decoder.hwm
                if not frames:
                    continue
                self.frames_received += len(frames)
                now = self.clock.now()
                if self.chaos is None:
                    self._saw_peer(peer, now)
                    for frame in frames:
                        await self._deliver_frame(peer, frame)
                    continue
                # Chaos seam: decide per frame *before* any liveness
                # credit — a dropped frame is as if the network lost
                # it, and delayed frames go through the per-link FIFO
                # queue (a zero-delay frame must still not overtake an
                # earlier delayed one) carrying their socket-arrival
                # stamp ``now``.
                queue = self._chaos_queues.get(peer)
                for frame in frames:
                    drop, delay_s = self.chaos.decide(int(peer), frame)
                    if drop:
                        self._trace_chaos_drop(peer, frame)
                        continue
                    if queue is None:
                        self._saw_peer(peer, now)
                        await self._deliver_frame(peer, frame)
                        continue
                    due = max(
                        self._chaos_due.get(peer, 0.0), now + delay_s
                    )
                    self._chaos_due[peer] = due
                    queue.put_nowait((due, now, frame))
        except TransportError:
            return
        except ConnectionError:
            return
        finally:
            writer.close()

    async def _chaos_delivery_loop(
        self,
        peer: SiteId,
        queue: "asyncio.Queue[tuple[float, float, dict[str, Any]]]",
    ) -> None:
        """Deliver one link's chaos-scheduled frames in FIFO order."""
        while True:
            due, stamp, frame = await queue.get()
            remaining = due - self.clock.now()
            if remaining > 0:
                await asyncio.sleep(remaining)
            self._saw_peer(peer, stamp)
            try:
                await self._deliver_frame(peer, frame)
            except (TransportError, ConnectionError):
                continue

    def _trace_chaos_drop(self, peer: SiteId, frame: dict[str, Any]) -> None:
        """Record a chaos drop; close the sender's span if it had one."""
        self._trace(
            "live.chaos_drop",
            f"chaos dropped {frame.get('t')!r} frame from site {peer}",
            peer=int(peer),
        )
        sid = frame.get("sid")
        if sid is None:
            return
        # As with incarnation fencing, a chaos drop is a *deliberate*
        # loss with a reason — close the span so strict stitching sees
        # neither an orphan nor a forever-inflight send.
        drop_data: dict[str, Any] = {
            "msg_id": int(sid),
            "src": int(peer),
            "dst": int(self.site),
            "reason": "chaos",
        }
        if frame.get("txn") is not None:
            drop_data["txn"] = frame["txn"]
        self._trace(
            "net.drop", f"span {int(sid)} dropped by chaos", **drop_data
        )

    async def _deliver_frame(self, peer: SiteId, frame: dict[str, Any]) -> None:
        """Hand one surviving inbound frame to the site."""
        if frame.get("t") == "hb":
            return
        dst_boot = frame.get("dst_boot")
        if dst_boot is not None and dst_boot < self.boot:
            # Commit-protocol traffic addressed to a dead
            # incarnation of this site: per the crash
            # model those messages were lost with the
            # crash.  This incarnation resolves the
            # transactions involved via recovery, not by
            # replaying the old protocol run.
            self._trace(
                "live.stale_frame",
                f"dropping {frame.get('t')!r} frame addressed "
                f"to boot {dst_boot} (this is boot {self.boot})",
                peer=int(peer),
            )
            sid = frame.get("sid")
            if sid is not None:
                # Close the sender's span: a fenced frame is
                # a *deliberate* drop with a reason, never an
                # orphan or a forever-inflight mystery.
                drop_data: dict[str, Any] = {
                    "msg_id": int(sid),
                    "src": int(peer),
                    "dst": int(self.site),
                    "reason": "stale_incarnation",
                }
                if frame.get("txn") is not None:
                    drop_data["txn"] = frame["txn"]
                self._trace(
                    "net.drop",
                    f"span {int(sid)} fenced by boot {self.boot}",
                    **drop_data,
                )
            return
        await self._on_frame(peer, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transport(site={self.site}, {self.host}:{self.port}, "
            f"peers={sorted(map(int, self.peers))}, "
            f"suspected={sorted(map(int, self.suspected))})"
        )
