"""Deterministic cluster-trace stitching for the live runtime.

Each live site writes its own JSONL trace with timestamps from its own
monotonic clock — wall times of *different processes* (let alone
different boots of one process) are incomparable, so a cluster-wide
timeline cannot be built by sorting on time.  What the traces do carry
is causality: every ``net.send`` has a cluster-unique ``msg_id``, the
receiver echoes it on its ``net.deliver`` / ``net.drop``, and every
entry a site emits *while handling* a delivery is stamped with that
span as ``parent``.  The stitcher turns N site traces into one
causally-ordered trace by topologically sorting the event graph:

* **program order** — entries of one site are ordered as written,
  *per transaction* (Skeen's protocols impose no cross-transaction
  order, and the interleaving of unrelated transactions in one site's
  file is scheduler noise, not causality);
* **symmetric arrivals** — maximal runs of consecutive arrival events
  (``net.deliver`` / ``net.drop``) within one transaction are mutually
  unordered: vote messages from different peers race, and which
  arrived first is again scheduler noise.  The run's members all
  depend on what preceded the run and are all required before what
  follows it;
* **message edges** — every arrival depends on its ``net.send``.

Ties in the resulting partial order are broken by *content* (category,
site, and the stable part of the payload), never by local timestamps,
so two runs of the same fixed-seed scenario stitch to the same order.
With ``canonical=True`` the output is additionally **byte-stable**:
volatile fields (durations, timestamps, span ids) are stripped or
remapped to dense deterministic ids and racy advisory categories are
excluded, so the stitched bytes can be diffed across runs — the
cluster-level analogue of the simulator's deterministic traces.

The stitcher also audits span hygiene: an arrival whose send is
missing (**orphan span**) or a ``parent`` pointing at no known send
(**orphan parent**) means lost instrumentation or a truncated trace;
a send with no arrival is merely **in flight** (expected when a site
was killed).
"""

from __future__ import annotations

import dataclasses
import heapq
import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import LiveConfigError
from repro.sim.tracing import TraceEntry, TraceLog

#: Arrival categories — the receiving end of a message span.
ARRIVALS = frozenset({"net.deliver", "net.drop", "net.partition_drop"})

#: Categories kept in canonical (byte-stable) output: the protocol
#: narrative.  Deliberately excluded: startup/teardown races
#: (``live.ready``, ``live.listen``), wall-clock advisory events
#: (``log.fsync``, ``txn.stages``), and failure-detector noise
#: (suspicion, reconnects, heartbeat-driven events) — all of which
#: vary run to run even for a fixed scenario.
CANONICAL_CATEGORIES = frozenset(
    {
        "live.boot",
        "live.begin",
        "live.recover",
        "live.unknown_txn",
        "net.send",
        "net.deliver",
        "net.drop",
        "engine.transition",
        "engine.forced_state",
        "engine.forced_outcome",
        "engine.partial_crash",
        "phase.enter",
        "phase.exit",
        "txn.decided",
    }
)

#: Data keys stripped from canonical output and from tie-break keys:
#: measured durations, local timestamps, and log positions are real
#: observations but not part of the causal narrative.
VOLATILE_DATA_KEYS = frozenset(
    {
        "elapsed",
        "elapsed_ms",
        "duration_ms",
        "sent_at",
        "queue_ms",
        "resolve_ms",
        "durable_ms",
        "total_ms",
        "batch",
        "lsn",
        "site_time",
    }
)

#: Keys whose values are span ids — remapped, not stripped.
_SPAN_ID_KEYS = ("msg_id", "parent")


@dataclasses.dataclass
class StitchResult:
    """One stitched cluster trace plus its hygiene report.

    Attributes:
        trace: The merged :class:`TraceLog`, causally ordered; entry
            times are emission indices (site clocks are incomparable).
        sites: Per-site ``{"entries": n, "malformed": m}`` input stats.
        orphan_spans: ``msg_id`` values of arrivals with no send.
        orphan_parents: ``parent`` values pointing at no known send.
        inflight: Sends that never reached an arrival (expected when a
            site died with frames queued).
        cycles_broken: Entries emitted out of order because the event
            graph was cyclic (always 0 for well-formed traces).
        canonical: Whether byte-stable normalization was applied.
    """

    trace: TraceLog
    sites: dict[int, dict[str, int]]
    orphan_spans: list[int]
    orphan_parents: list[int]
    inflight: int
    cycles_broken: int
    canonical: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the CLI's ``--json`` sidecar)."""
        return {
            "entries": len(self.trace),
            "sites": {
                str(site): dict(stats)
                for site, stats in sorted(self.sites.items())
            },
            "orphan_spans": sorted(self.orphan_spans),
            "orphan_parents": sorted(self.orphan_parents),
            "inflight": self.inflight,
            "cycles_broken": self.cycles_broken,
            "canonical": self.canonical,
        }


def load_site_traces(data_dir: Union[str, Path]) -> dict[int, TraceLog]:
    """Load every ``site-N.trace.jsonl`` under a live data directory.

    Lenient parse: a ``kill -9`` mid-run tears the block-buffered
    trace tail, and torn lines must degrade the analysis, not abort it
    (each log's ``malformed`` counter records the damage).

    Raises:
        LiveConfigError: If the directory holds no site traces.
    """
    data_dir = Path(data_dir)
    logs: dict[int, TraceLog] = {}
    for path in sorted(data_dir.glob("site-*.trace.jsonl")):
        site = int(path.name.split("-", 1)[1].split(".", 1)[0])
        logs[site] = TraceLog.load(str(path), lenient=True)
    if not logs:
        raise LiveConfigError(f"no site-*.trace.jsonl files under {data_dir}")
    return logs


def _tiebreak_data(entry: TraceEntry) -> dict[str, Any]:
    """The stable part of an entry's payload, for content ordering."""
    return {
        key: value
        for key, value in entry.data.items()
        if key not in VOLATILE_DATA_KEYS and key not in _SPAN_ID_KEYS
    }


def stitch(
    site_logs: dict[int, TraceLog], canonical: bool = False
) -> StitchResult:
    """Merge per-site traces into one causally-ordered cluster trace."""
    # ------------------------------------------------------------------
    # Collect nodes (optionally pre-filtered for canonical stability —
    # racy categories must not influence the graph shape either).
    # ------------------------------------------------------------------
    nodes: list[tuple[int, int, TraceEntry]] = []  # (site, local seq, entry)
    for site in sorted(site_logs):
        seq = 0
        for entry in site_logs[site]:
            if canonical and entry.category not in CANONICAL_CATEGORIES:
                continue
            nodes.append((site, seq, entry))
            seq += 1

    n = len(nodes)
    children: list[list[int]] = [[] for _ in range(n)]
    indegree = [0] * n

    def edge(src: int, dst: int) -> None:
        children[src].append(dst)
        indegree[dst] += 1

    # ------------------------------------------------------------------
    # Program-order edges, per site and per transaction.
    # ------------------------------------------------------------------
    by_site: dict[int, list[int]] = {}
    for idx, (site, _seq, _entry) in enumerate(nodes):
        by_site.setdefault(site, []).append(idx)

    sends: dict[int, int] = {}  # msg_id -> node index of its net.send
    arrivals: list[tuple[int, int]] = []  # (msg_id, node index)
    parent_refs: list[int] = []  # every `parent` value seen

    for site, indices in by_site.items():
        last_global: Optional[int] = None
        # txn -> (prev nodes, anchor for the open arrival run, run).
        txn_state: dict[Any, tuple[list[int], list[int], list[int]]] = {}
        for idx in indices:
            entry = nodes[idx][2]
            data = entry.data
            msg_id = data.get("msg_id")
            if msg_id is not None:
                if entry.category == "net.send":
                    sends.setdefault(int(msg_id), idx)
                elif entry.category in ARRIVALS:
                    arrivals.append((int(msg_id), idx))
            if data.get("parent") is not None:
                parent_refs.append(int(data["parent"]))

            txn = data.get("txn")
            if txn is None:
                if last_global is not None:
                    edge(last_global, idx)
                last_global = idx
                continue
            state = txn_state.get(txn)
            if state is None:
                prev = [last_global] if last_global is not None else []
                state = (prev, [], [])
            prev, anchor, run = state
            if entry.category in ARRIVALS:
                # Arrivals racing within one transaction are mutually
                # unordered; they all hang off the pre-run anchor.
                if not run:
                    anchor = list(prev)
                for pred in anchor:
                    edge(pred, idx)
                run.append(idx)
            else:
                preds = run if run else prev
                for pred in preds:
                    edge(pred, idx)
                prev, anchor, run = [idx], [], []
            txn_state[txn] = (prev, anchor, run)

    # ------------------------------------------------------------------
    # Message edges: an arrival happens after its send.
    # ------------------------------------------------------------------
    orphan_spans: set[int] = set()
    terminated: set[int] = set()
    for msg_id, idx in arrivals:
        send_idx = sends.get(msg_id)
        if send_idx is None:
            orphan_spans.add(msg_id)
        else:
            terminated.add(msg_id)
            edge(send_idx, idx)
    orphan_parents = sorted({ref for ref in parent_refs if ref not in sends})
    inflight = len([m for m in sends if m not in terminated])

    # ------------------------------------------------------------------
    # Kahn's algorithm with a content-keyed ready heap: among causally
    # unordered events, emission order is decided by what the event
    # *says*, never by local clocks or span ids.  Raw span ids are
    # allocation-order artifacts, so instead every emitted msg_id is
    # assigned a *dense* id in emission order, and an arrival's key
    # includes its message's dense id (known by then — its send is an
    # ancestor): two vote deliveries from one peer are otherwise
    # byte-identical, and the dense id orders them by their sends.
    # ------------------------------------------------------------------
    span_map: dict[int, int] = {}

    def dense(span: int) -> int:
        return span_map.setdefault(int(span), len(span_map) + 1)

    def sort_key(idx: int) -> tuple[str, int, int, int]:
        site, seq, entry = nodes[idx]
        content = json.dumps(
            [entry.category, _tiebreak_data(entry)],
            sort_keys=True,
            default=str,
        )
        msg_id = entry.data.get("msg_id")
        rank = span_map.get(int(msg_id), 0) if msg_id is not None else 0
        return (content, rank, site, seq)

    ready = [(sort_key(idx), idx) for idx in range(n) if indegree[idx] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _key, idx = heapq.heappop(ready)
        order.append(idx)
        msg_id = nodes[idx][2].data.get("msg_id")
        if msg_id is not None:
            dense(int(msg_id))
        for child in children[idx]:
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(ready, (sort_key(child), child))
    cycles_broken = n - len(order)
    if cycles_broken:
        emitted = set(order)
        order.extend(
            sorted((i for i in range(n) if i not in emitted), key=sort_key)
        )

    # ------------------------------------------------------------------
    # Emit.  Time becomes the emission index (cluster-causal position);
    # canonical mode additionally strips volatile payload fields and
    # remaps span ids through the dense emission-order map.
    # ------------------------------------------------------------------
    merged = TraceLog()
    for position, idx in enumerate(order):
        site, _seq, entry = nodes[idx]
        if canonical:
            data = _tiebreak_data(entry)
            # msg_id is remapped; parent is *stripped*: it names the
            # specific racing arrival whose handler emitted the entry
            # (e.g. whichever ack happened to complete a vote round),
            # which is scheduler noise.  Orphan-parent hygiene is
            # checked against the raw inputs above regardless.
            if entry.data.get("msg_id") is not None:
                data["msg_id"] = dense(int(entry.data["msg_id"]))
            merged.append(
                TraceEntry(
                    time=float(position),
                    category=entry.category,
                    site=site,
                    detail="",
                    data=data,
                )
            )
        else:
            data = dict(entry.data)
            data["site_time"] = entry.time
            merged.append(
                TraceEntry(
                    time=float(position),
                    category=entry.category,
                    site=site,
                    detail=entry.detail,
                    data=data,
                )
            )

    sites = {
        site: {"entries": len(log), "malformed": log.malformed}
        for site, log in sorted(site_logs.items())
    }
    return StitchResult(
        trace=merged,
        sites=sites,
        orphan_spans=sorted(orphan_spans),
        orphan_parents=orphan_parents,
        inflight=inflight,
        cycles_broken=cycles_broken,
        canonical=canonical,
    )


def stitch_data_dir(
    data_dir: Union[str, Path], canonical: bool = False
) -> StitchResult:
    """Load and stitch every site trace under one live data directory."""
    return stitch(load_site_traces(data_dir), canonical=canonical)
