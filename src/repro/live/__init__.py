"""The live cluster runtime: the same commit FSAs over real TCP.

Everything in :mod:`repro.runtime` — the FSA engine, the termination
protocol, the recovery protocol — was written against the narrow host
seam of :mod:`repro.runtime.seam`.  This package supplies the second
implementation of that seam, replacing the discrete-event simulator
with a real deployment substrate (see ``docs/LIVE.md``):

* :mod:`~repro.live.wire` — length-prefixed JSON frames and the
  payload codec for the runtime's message dataclasses;
* :mod:`~repro.live.clock` — :class:`TimeoutClock`, the wall-clock
  implementation of the :class:`repro.sim.clock.Clock` seam;
* :mod:`~repro.live.dtlog` — the durable on-disk DT log (append-only,
  fsync-on-force, CRC-framed records, torn-tail detection on replay);
* :mod:`~repro.live.transport` — asyncio TCP mesh with connection
  retry/backoff and heartbeat-timeout failure suspicion;
* :mod:`~repro.live.node` — :class:`LiveSite` / :class:`LiveTxn`, one
  server process hosting many concurrent transactions;
* :mod:`~repro.live.server` — the ``repro serve`` process entry point;
* :mod:`~repro.live.client` — the ``repro txn`` driver;
* :mod:`~repro.live.cluster` — the ``repro cluster`` harness: spawns N
  site subprocesses, drives transactions, injects real ``kill -9``
  crashes, and benchmarks protocols against each other.

The protocol logic itself is imported, never reimplemented: a live
site runs byte-for-byte the code the analysis layer proves nonblocking
and the schedule explorer adversarially tests.
"""

from repro.live.chaos import ChaosPolicy, ChaosRule, LinkChaos
from repro.live.clock import TimeoutClock
from repro.live.cluster import ClusterConfig, ClusterHarness
from repro.live.dtlog import DurableDTLog, SiteLogStore
from repro.live.node import LiveConfig, LiveSite
from repro.live.soak import SoakConfig, SoakResult, run_soak
from repro.live.transport import Transport
from repro.live.wire import decode_payload, encode_frame, encode_payload, read_frame

__all__ = [
    "ChaosPolicy",
    "ChaosRule",
    "ClusterConfig",
    "ClusterHarness",
    "LinkChaos",
    "SoakConfig",
    "SoakResult",
    "run_soak",
    "DurableDTLog",
    "LiveConfig",
    "LiveSite",
    "SiteLogStore",
    "TimeoutClock",
    "Transport",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "read_frame",
]
