"""The cluster harness: N real site processes, real crashes, one audit.

:class:`ClusterHarness` is the deployment counterpart of the simulator
harness: it spawns one ``repro serve`` subprocess per site on loopback,
waits for the mesh to form, drives transactions through a gateway, and
injects failures with actual POSIX signals — ``SIGKILL`` is delivered
to a process that has just flushed a broadcast, not to a model.

Determinism over wall clocks comes from *markers*, not sleeps: a site
configured with ``pause_after`` freezes at an exact protocol point and
writes ``site-N.paused``; the harness waits for the marker and only
then kills.  Readiness works the same way (``site-N.ready`` appears
once a site has heard from every peer), so no transaction starts while
the mesh could still misread slow startup as failure.

:func:`kill_coordinator_scenario` packages the paper's headline
experiment as one callable: run a transaction, ``kill -9`` the
coordinator mid-broadcast, watch the survivors — 3PC terminates
(commit), 2PC blocks until the coordinator's restarted incarnation
resolves it — then audit atomicity across every site's final outcome.

:meth:`ClusterHarness.bench` measures the healthy path as a
closed-loop benchmark: ``concurrency`` client workers each keep one
transaction in flight through a gateway, so N in-flight transactions
exercise the sites' group-commit DT logs and frame coalescing.  The
report carries client-observed latency percentiles plus the
amortization counters (``fsync_calls`` vs ``forced_writes``,
``socket_writes`` vs frames).  ``concurrency=1`` is the strictly
serial path the kill-scenario determinism relies on.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional

import repro
from repro.errors import (
    AtomicityViolationError,
    ClusterError,
    LiveConfigError,
    LiveTimeoutError,
)
from repro.live import client
from repro.live.chaos import ChaosPolicy, gray_link_policy
from repro.live.node import LOOPS, PRESUMPTIONS
from repro.live.wire_bin import CODEC_JSON, CODECS
from repro.types import Outcome, SiteId


@dataclasses.dataclass
class ClusterConfig:
    """Shape and timing of one live cluster.

    The default timing profile is tuned for loopback test runs: fast
    heartbeats and short suspicion so kill/recover scenarios finish in
    seconds.  Production-ish LAN deployments would scale these up
    together (suspicion must stay a few heartbeats wide).
    """

    spec_name: str
    data_dir: Path
    n_sites: int = 3
    host: str = "127.0.0.1"
    hb_interval: float = 0.1
    suspect_after: float = 0.6
    requery_interval: float = 0.3
    termination_mode: str = "standard"
    ready_timeout: float = 30.0
    decide_timeout: float = 30.0
    max_inflight: int = 64
    #: Optional chaos policy applied cluster-wide: serialized to
    #: ``data_dir/chaos.json`` at spawn time and passed to every site
    #: via ``repro serve --chaos`` (each site applies its own slice).
    chaos: Optional[ChaosPolicy] = None
    #: Wire codec for peer links (``"json"`` or ``"bin"``); every site
    #: gets ``repro serve --codec`` with it.  Mixed clusters are legal
    #: (negotiated per connection) but a harness spawns uniform ones.
    codec: str = CODEC_JSON
    #: Commit presumption, cluster-uniform (``none`` / ``abort`` /
    #: ``commit``); every site gets ``repro serve --presumption``.
    presumption: str = "none"
    #: Sites taking the read-only one-phase exit (cluster-uniform so
    #: every site builds the same spec); excluded from the benchmark's
    #: gateway rotation — a read-only site never hosts a client begin.
    ro_sites: tuple[SiteId, ...] = ()
    #: Event-loop implementation every site runs (``asyncio`` /
    #: ``uvloop``).
    loop: str = "asyncio"
    #: Per-site trace ring capacity override (``repro serve
    #: --trace-cap``); ``None`` keeps the serve default.
    trace_cap: Optional[int] = None

    def __post_init__(self) -> None:
        self.data_dir = Path(self.data_dir)
        if self.n_sites < 2:
            raise ClusterError("a live cluster needs at least 2 sites")
        if self.codec not in CODECS:
            raise ClusterError(
                f"codec must be one of {', '.join(CODECS)}, got {self.codec!r}"
            )
        # Config mistakes exit with EXIT_CONFIG, not EXIT_TRANSPORT: an
        # unknown presumption or loop silently defaulting would skew a
        # whole benchmark sweep.
        if self.presumption not in PRESUMPTIONS:
            raise LiveConfigError(
                f"presumption must be one of {', '.join(PRESUMPTIONS)}, "
                f"got {self.presumption!r}"
            )
        if self.loop not in LOOPS:
            raise LiveConfigError(
                f"loop must be one of {', '.join(LOOPS)}, got {self.loop!r}"
            )
        self.ro_sites = tuple(sorted(SiteId(int(s)) for s in self.ro_sites))
        if self.trace_cap is not None and self.trace_cap < 1:
            raise LiveConfigError(
                f"trace cap must be >= 1, got {self.trace_cap}"
            )


def _free_ports(host: str, count: int) -> list[int]:
    """Reserve ``count`` currently-free TCP ports on ``host``."""
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


class ClusterHarness:
    """Spawn, drive, crash, restart, and audit one live cluster."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.config.data_dir.mkdir(parents=True, exist_ok=True)
        self.ports: dict[SiteId, int] = {
            SiteId(i): port
            for i, port in enumerate(
                _free_ports(config.host, config.n_sites), start=1
            )
        }
        self.processes: dict[SiteId, subprocess.Popen] = {}
        self._log_files: list[Any] = []

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------

    def __enter__(self) -> "ClusterHarness":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Process control
    # ------------------------------------------------------------------

    def _marker(self, site: SiteId, suffix: str) -> Path:
        return self.config.data_dir / f"site-{site}.{suffix}"

    def _serve_argv(
        self, site: SiteId, pause_after: Optional[str], vote: str
    ) -> list[str]:
        peers = ",".join(
            f"{peer}={self.config.host}:{port}"
            for peer, port in sorted(self.ports.items())
            if peer != site
        )
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--site", str(int(site)),
            "--spec", self.config.spec_name,
            "--sites", str(self.config.n_sites),
            "--host", self.config.host,
            "--port", str(self.ports[site]),
            "--peers", peers,
            "--data-dir", str(self.config.data_dir),
            "--hb-interval", str(self.config.hb_interval),
            "--suspect-after", str(self.config.suspect_after),
            "--requery-interval", str(self.config.requery_interval),
            "--termination-mode", self.config.termination_mode,
            "--max-inflight", str(self.config.max_inflight),
            "--vote", vote,
            "--codec", self.config.codec,
            "--presumption", self.config.presumption,
            "--loop", self.config.loop,
        ]
        if self.config.ro_sites:
            argv += ["--ro", ",".join(str(int(s)) for s in self.config.ro_sites)]
        if self.config.trace_cap is not None:
            argv += ["--trace-cap", str(self.config.trace_cap)]
        if pause_after is not None:
            argv += ["--pause-after", pause_after]
        if self.config.chaos is not None:
            argv += ["--chaos", str(self._chaos_path())]
        return argv

    def _chaos_path(self) -> Path:
        return self.config.data_dir / "chaos.json"

    def spawn(
        self,
        site: SiteId,
        pause_after: Optional[str] = None,
        vote: str = "yes",
    ) -> subprocess.Popen:
        """Start (or restart) one site process.

        Stale ready/paused markers from a previous incarnation are
        removed first, so waiting on a marker always observes the new
        process, not history.
        """
        site = SiteId(int(site))
        if site in self.processes and self.processes[site].poll() is None:
            raise ClusterError(f"site {site} is already running")
        for suffix in ("ready", "paused"):
            self._marker(site, suffix).unlink(missing_ok=True)
        if self.config.chaos is not None:
            # (Re)write the shared policy so a site restarted after a
            # config change sees the current one; the file is the
            # run's replayable chaos record.
            self.config.chaos.save(self._chaos_path())
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        log = open(self.config.data_dir / f"site-{site}.stdio.log", "a")
        self._log_files.append(log)
        process = subprocess.Popen(
            self._serve_argv(site, pause_after, vote),
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self.processes[site] = process
        return process

    def start(self, pause_after: dict[SiteId, str] | None = None) -> None:
        """Spawn every site and wait for the full mesh to be ready."""
        pause_after = pause_after or {}
        for site in self.ports:
            self.spawn(site, pause_after=pause_after.get(site))
        self.wait_all_ready()

    def kill(self, site: SiteId, sig: int = signal.SIGKILL) -> None:
        """Deliver a real signal to one site process and reap it."""
        site = SiteId(int(site))
        process = self.processes.get(site)
        if process is None or process.poll() is not None:
            raise ClusterError(f"site {site} is not running")
        process.send_signal(sig)
        process.wait(timeout=10)

    def stop(self) -> None:
        """Tear everything down (idempotent; used by ``__exit__``)."""
        for process in self.processes.values():
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 5
        for process in self.processes.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck proc
                process.kill()
                process.wait(timeout=5)
        for log in self._log_files:
            if not log.closed:
                log.close()
        self._log_files.clear()

    # ------------------------------------------------------------------
    # Marker / status waiting
    # ------------------------------------------------------------------

    def wait_marker(self, path: Path, timeout: float, what: str) -> None:
        """Poll for a marker file; fail loudly with context."""
        deadline = time.monotonic() + timeout
        while not path.exists():
            if time.monotonic() > deadline:
                raise LiveTimeoutError(
                    f"{what}: marker {path.name} did not appear in {timeout:g}s"
                )
            self._check_processes()
            time.sleep(0.02)

    def wait_all_ready(self) -> None:
        """Wait for every running site's ready marker."""
        for site in self.processes:
            if self.processes[site].poll() is None:
                self.wait_marker(
                    self._marker(site, "ready"),
                    self.config.ready_timeout,
                    f"site {site} ready",
                )

    def wait_paused(self, site: SiteId, timeout: float = 30.0) -> None:
        """Wait until a pause-instrumented site has frozen and flushed."""
        self.wait_marker(
            self._marker(SiteId(int(site)), "paused"), timeout, f"site {site} paused"
        )

    def _check_processes(self) -> None:
        """Fail fast if a site died when it was not supposed to."""
        for site, process in self.processes.items():
            code = process.poll()
            if code not in (None, 0, -signal.SIGKILL, -signal.SIGTERM):
                raise ClusterError(
                    f"site {site} exited unexpectedly with code {code} "
                    f"(see site-{site}.stdio.log)"
                )

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def begin(
        self,
        txn_id: int,
        gateway: SiteId = SiteId(1),
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> dict[str, Any]:
        """Start one transaction through a gateway site."""
        timeout = timeout if timeout is not None else self.config.decide_timeout
        return asyncio.run(
            client.begin_txn(
                self.config.host,
                self.ports[SiteId(int(gateway))],
                txn_id,
                wait=wait,
                timeout=timeout,
            )
        )

    def begin_many(
        self,
        txn_ids: list[int],
        gateway: SiteId = SiteId(1),
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        """Start many transactions concurrently through one gateway.

        All begins share one event loop, so the gateway sees genuinely
        interleaved in-flight transactions; replies come back in
        ``txn_ids`` order.
        """
        timeout = timeout if timeout is not None else self.config.decide_timeout
        host, port = self.config.host, self.ports[SiteId(int(gateway))]

        async def run() -> list[dict[str, Any]]:
            return list(
                await asyncio.gather(
                    *(
                        client.begin_txn(host, port, txn, wait=wait, timeout=timeout)
                        for txn in txn_ids
                    )
                )
            )

        return asyncio.run(run())

    def status(self, txn_id: int, site: SiteId) -> Optional[dict[str, Any]]:
        """One site's view of a transaction (``None`` if unreachable)."""
        return asyncio.run(
            client.try_status(
                self.config.host, self.ports[SiteId(int(site))], txn_id
            )
        )

    def statuses(self, txn_id: int) -> dict[SiteId, Optional[dict[str, Any]]]:
        """Every site's view of a transaction."""
        return {site: self.status(txn_id, site) for site in self.ports}

    def wait_outcomes(
        self,
        txn_id: int,
        predicate: Callable[[dict[SiteId, Optional[dict[str, Any]]]], bool],
        timeout: float,
        what: str,
    ) -> dict[SiteId, Optional[dict[str, Any]]]:
        """Poll cluster-wide statuses until ``predicate`` holds."""
        deadline = time.monotonic() + timeout
        while True:
            views = self.statuses(txn_id)
            if predicate(views):
                return views
            if time.monotonic() > deadline:
                summary = {
                    int(site): (view or {}).get("outcome", "down")
                    for site, view in views.items()
                }
                raise LiveTimeoutError(f"{what}: still {summary} after {timeout:g}s")
            self._check_processes()
            time.sleep(0.05)

    def audit_atomicity(self, txn_id: int) -> dict[SiteId, str]:
        """Assert no site committed while another aborted.

        Raises:
            AtomicityViolationError: On a split decision — the exact
                inconsistency commit protocols exist to prevent.
        """
        finals: dict[SiteId, str] = {}
        for site, view in self.statuses(txn_id).items():
            if view is not None and view["outcome"] in ("commit", "abort"):
                finals[site] = view["outcome"]
        if len(set(finals.values())) > 1:
            raise AtomicityViolationError(
                f"txn {txn_id} split: "
                f"{ {int(s): o for s, o in finals.items()} }"
            )
        return finals

    # ------------------------------------------------------------------
    # Benchmark
    # ------------------------------------------------------------------

    def bench(
        self,
        n_txns: int,
        gateway: SiteId = SiteId(1),
        concurrency: int = 1,
        first_txn: int = 1,
    ) -> dict[str, Any]:
        """Closed-loop benchmark: ``concurrency`` workers, ``n_txns`` total.

        Each worker keeps exactly one transaction in flight (begin →
        wait for its gateway's durable decision → next), so the cluster
        hosts up to ``concurrency`` interleaved transactions.  Workers
        are assigned gateways round-robin starting at ``gateway`` — any
        site can gateway a transaction, so client handling spreads
        across the cluster the way a real deployment's would, while the
        protocol's coordinator stays wherever the spec puts it.
        Latency is client-observed and includes every network hop and
        forced write on the critical path.  ``concurrency=1`` is the
        strictly serial baseline: one worker, one gateway (``gateway``),
        one transaction at a time.

        Counter totals come from the per-site metrics snapshots, minus
        one boot record (one forced write, one fsync) per site, so the
        numbers reflect protocol log writes only.
        """
        if n_txns < 1:
            raise ClusterError(f"need at least 1 benchmark txn, got {n_txns}")
        if concurrency < 1:
            raise ClusterError(f"concurrency must be >= 1, got {concurrency}")
        before = self._bench_counters()
        latencies, stage_samples, elapsed = asyncio.run(
            self._bench_async(n_txns, gateway, concurrency, first_txn)
        )
        self._quiesce()
        after = self._bench_counters()
        ordered = sorted(latencies)

        def quantile(q: float) -> float:
            return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

        # Per-stage latency decomposition from the gateway replies.
        # Stages are additive per transaction (queue + resolve +
        # durable = elapsed), so the stage means sum to the mean
        # latency — the consistency the benchmark suite asserts.
        breakdown: dict[str, dict[str, float]] = {}
        for stage, values in stage_samples.items():
            values = sorted(values)

            def stage_quantile(q: float) -> float:
                return values[min(len(values) - 1, int(q * len(values)))]

            breakdown[stage] = {
                "mean": round(sum(values) / len(values), 3),
                "p50": round(stage_quantile(0.50), 3),
                "p99": round(stage_quantile(0.99), 3),
            }

        delta = {
            key: after[key] - before[key] for key in after
        }
        return {
            "protocol": self.config.spec_name,
            "n_sites": self.config.n_sites,
            "codec": self.config.codec,
            "presumption": self.config.presumption,
            "loop": self.config.loop,
            "ro_sites": [int(s) for s in self.config.ro_sites],
            "txns": n_txns,
            "concurrency": concurrency,
            "elapsed_s": round(elapsed, 4),
            "txns_per_sec": round(n_txns / elapsed, 2),
            "latency_ms": {
                "mean": round(sum(latencies) / len(latencies), 3),
                "p50": round(quantile(0.50), 3),
                "p99": round(quantile(0.99), 3),
                "max": round(ordered[-1], 3),
            },
            "latency_breakdown": breakdown,
            "forced_writes": delta["forced_writes"],
            "forced_writes_per_txn": round(delta["forced_writes"] / n_txns, 2),
            "forced_writes_skipped": delta["forced_writes_skipped"],
            "fsync_calls": delta["fsync_calls"],
            "fsyncs_per_txn": round(delta["fsync_calls"] / n_txns, 2),
            "proto_frames": delta["proto_frames"],
            "proto_frames_per_txn": round(delta["proto_frames"] / n_txns, 2),
            "socket_writes": delta["socket_writes"],
            "frames_per_socket_write": round(
                delta["frames_sent"] / delta["socket_writes"], 2
            )
            if delta["socket_writes"]
            else 0.0,
        }

    async def _bench_async(
        self, n_txns: int, gateway: SiteId, concurrency: int, first_txn: int
    ) -> tuple[list[float], dict[str, list[float]], float]:
        host = self.config.host
        # Read-only participants never gateway: their exit carries no
        # outcome, so a client begin there would have nothing to wait on.
        sites = sorted(s for s in self.ports if s not in self.config.ro_sites)
        first = sites.index(SiteId(int(gateway)))
        latencies: list[float] = []
        stage_samples: dict[str, list[float]] = {}
        ids = iter(range(first_txn, first_txn + n_txns))

        async def worker(port: int) -> None:
            async with client.ClientSession(host, port) as session:
                while True:
                    txn_id = next(ids, None)
                    if txn_id is None:
                        return
                    reply = await session.begin_txn(
                        txn_id, timeout=self.config.decide_timeout
                    )
                    if reply.get("outcome") != Outcome.COMMIT.value:
                        raise ClusterError(
                            f"benchmark txn {txn_id} ended "
                            f"{reply.get('outcome')!r}; "
                            "the healthy path must commit"
                        )
                    latencies.append(float(reply["elapsed_ms"]))
                    for stage, value in (reply.get("stages") or {}).items():
                        stage_samples.setdefault(stage, []).append(float(value))

        started = time.monotonic()
        await asyncio.gather(
            *(
                worker(self.ports[sites[(first + i) % len(sites)]])
                for i in range(min(concurrency, n_txns))
            )
        )
        return latencies, stage_samples, time.monotonic() - started

    def _quiesce(self, timeout: float = 5.0) -> None:
        """Wait until no site reports in-flight transactions.

        The gateway replies to the last client before the *participants*
        finish publishing their own decision records, and sites write
        their final (quiescent) metrics snapshot only once nothing is in
        flight — so counter reads right after a bench would undercount.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            snapshots = [self.site_metrics(site) for site in self.ports]
            if all(
                s is not None and s["live"].get("inflight_txns", 0) == 0
                for s in snapshots
            ):
                return
            time.sleep(0.02)

    def _bench_counters(self) -> dict[str, int]:
        """Cluster-wide counter totals (boot records discounted).

        Taken before and after a bench run so repeated benches on one
        live cluster measure only their own transactions.
        """
        totals = {
            "forced_writes": 0,
            "forced_writes_skipped": 0,
            "fsync_calls": 0,
            "frames_sent": 0,
            "socket_writes": 0,
            "proto_frames": 0,
        }
        for site in self.ports:
            snapshot = self.site_metrics(site)
            if snapshot is None:
                continue
            live = snapshot.get("live", {})
            boots = int(live.get("boot", 1))
            # Each incarnation forces exactly one boot record on open
            # (one forced write, one fsync); discount them.
            totals["forced_writes"] += int(live.get("forced_writes", 0)) - boots
            totals["forced_writes_skipped"] += int(
                live.get("forced_writes_skipped", 0)
            )
            totals["fsync_calls"] += int(live.get("fsync_calls", 0)) - boots
            totals["frames_sent"] += int(live.get("frames_sent", 0))
            totals["socket_writes"] += int(live.get("socket_writes", 0))
            for key, value in snapshot.get("counters", {}).items():
                if key.startswith("proto_frames_sent_total"):
                    totals["proto_frames"] += value
        return totals

    def site_metrics(self, site: SiteId) -> Optional[dict[str, Any]]:
        """The last metrics snapshot a site published (or ``None``)."""
        path = self.config.data_dir / f"site-{int(site)}.metrics.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())


# ----------------------------------------------------------------------
# Canned scenario: kill -9 the coordinator mid-broadcast
# ----------------------------------------------------------------------

#: Which protocol message's broadcast to cut the coordinator down
#: after.  ``xact`` is the 2PC coordinator's last broadcast before its
#: decision; ``prepare`` is the 3PC coordinator's phase-2 broadcast —
#: in both cases the slaves are left waiting on a dead coordinator,
#: which is exactly the situation the termination protocol exists for.
PAUSE_POINTS = {
    "2pc-central": "xact",
    "3pc-central": "prepare",
}


@dataclasses.dataclass
class ScenarioResult:
    """What :func:`kill_coordinator_scenario` observed."""

    protocol: str
    presumption: str
    survivors_blocked: bool
    survivor_outcomes: dict[int, str]
    final_outcomes: dict[int, str]
    coordinator_boot: int
    survivor_decision_s: float
    total_s: float

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def kill_coordinator_scenario(harness: ClusterHarness, txn_id: int = 1) -> ScenarioResult:
    """Kill -9 the coordinator after its broadcast; watch the cluster.

    For a nonblocking protocol (3PC) the survivors must *commit* via
    the termination protocol while the coordinator is dead, and the
    restarted coordinator must learn the commit through recovery.  For
    a blocking protocol (2PC) the survivors must report BLOCKED and
    stay undecided until the coordinator's restarted incarnation
    resolves the transaction (unilateral abort from an empty log).
    Either way the scenario ends with an atomicity audit across all
    three durable outcomes.

    Raises:
        ClusterError: If the protocol has no registered pause point.
        AtomicityViolationError: If sites decided inconsistently.
        LiveTimeoutError: If a phase did not happen in time.
    """
    spec_name = harness.config.spec_name
    if spec_name not in PAUSE_POINTS:
        raise ClusterError(
            f"no kill-coordinator pause point for {spec_name!r}; "
            f"known: {sorted(PAUSE_POINTS)}"
        )
    coordinator = SiteId(1)
    gateway = SiteId(2)
    survivors = [SiteId(i) for i in range(2, harness.config.n_sites + 1)]
    pause = f"{PAUSE_POINTS[spec_name]}:{harness.config.n_sites - 1}"
    started = time.monotonic()

    harness.start(pause_after={coordinator: pause})
    harness.begin(txn_id, gateway=gateway, wait=False)
    harness.wait_paused(coordinator)
    harness.kill(coordinator, signal.SIGKILL)

    def survivors_decided(views: dict[SiteId, Optional[dict[str, Any]]]) -> bool:
        return all(
            views[s] is not None and views[s]["outcome"] in ("commit", "abort")
            for s in survivors
        )

    def survivors_blocked(views: dict[SiteId, Optional[dict[str, Any]]]) -> bool:
        return all(
            views[s] is not None and views[s]["blocked"] for s in survivors
        )

    nonblocking = spec_name.startswith("3pc")
    waiter = survivors_decided if nonblocking else survivors_blocked
    what = (
        "survivors terminating without the coordinator"
        if nonblocking
        else "survivors reporting BLOCKED"
    )
    views = harness.wait_outcomes(
        txn_id, waiter, harness.config.decide_timeout, what
    )
    survivor_decision_s = time.monotonic() - started
    survivor_outcomes = {
        int(s): views[s]["outcome"] for s in survivors if views[s] is not None
    }
    harness.audit_atomicity(txn_id)

    # The crashed coordinator returns and recovery resolves it — and,
    # for 2PC, resolves the blocked survivors too.
    harness.spawn(coordinator)

    def everyone_final(views: dict[SiteId, Optional[dict[str, Any]]]) -> bool:
        return all(
            view is not None and view["outcome"] in ("commit", "abort")
            for view in views.values()
        )

    views = harness.wait_outcomes(
        txn_id,
        everyone_final,
        harness.config.decide_timeout,
        "restarted coordinator recovering the outcome",
    )
    finals = harness.audit_atomicity(txn_id)
    coordinator_view = views[coordinator]
    assert coordinator_view is not None
    return ScenarioResult(
        protocol=spec_name,
        presumption=harness.config.presumption,
        survivors_blocked=not nonblocking,
        survivor_outcomes=survivor_outcomes,
        final_outcomes={int(site): outcome for site, outcome in finals.items()},
        coordinator_boot=int(coordinator_view["boot"]),
        survivor_decision_s=round(survivor_decision_s, 3),
        total_s=round(time.monotonic() - started, 3),
    )


# ----------------------------------------------------------------------
# Canned scenario: gray links break the reliable-detector assumption
# ----------------------------------------------------------------------


@dataclasses.dataclass
class GrayFailureResult:
    """What :func:`gray_failure_scenario` observed.

    Attributes:
        protocol: Spec under test (``3pc-central``).
        chaos_hash: Content hash of the chaos policy that was applied.
        split_detected: Whether the expected split decision happened.
        outcomes: Final outcome per participant that decided.
        coordinator_outcome: The (never-suspecting) coordinator's view.
        violation: The atomicity violation message the harness caught.
        audit_ok: Whether the durable-log audit passed (must be False).
        audit_violations: What ``repro audit`` flagged.
        suspected: Each site's suspected-peer list from its metrics
            snapshot — the detector asymmetry in the raw.
        total_s: Wall time of the whole scenario.
    """

    protocol: str
    chaos_hash: str
    split_detected: bool
    outcomes: dict[int, str]
    coordinator_outcome: str
    violation: str
    audit_ok: bool
    audit_violations: list[str]
    suspected: dict[int, list[int]]
    total_s: float

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def gray_failure_scenario(
    harness: ClusterHarness, txn_id: int = 1, seed: int = 0
) -> GrayFailureResult:
    """Drive 3PC into a split decision with gray links — no site dies.

    The chaos policy (:func:`~repro.live.chaos.gray_link_policy`)
    violates the paper's reliable-detector assumption in both
    directions at once: the participants suspect a coordinator that is
    alive (its heartbeats stop once the vote-request is out), while the
    coordinator — whose inbound links stay clean — never suspects
    anyone.  Site 2 reaches *prepared* and terminates solo with
    ``rule(p) = COMMIT``; site 3, whose ``prepare`` the link dropped,
    terminates solo from *wait* with ``rule(w) = ABORT``.  Nonblocking
    termination without the assumption it rests on is exactly wrong,
    and the audit must catch it as an AC1 violation across the durable
    DT logs.

    The split is the scenario's *success* criterion; failing to
    reproduce it raises.

    Raises:
        ClusterError: If the harness is not a 3-site central-3PC
            cluster, or the split decision did not occur.
        LiveTimeoutError: If the participants never decided.
    """
    spec_name = harness.config.spec_name
    if spec_name != "3pc-central" or harness.config.n_sites != 3:
        raise ClusterError(
            "gray_failure_scenario needs a 3-site 3pc-central cluster, "
            f"got {spec_name!r} with {harness.config.n_sites} sites"
        )
    if harness.config.chaos is None:
        harness.config.chaos = gray_link_policy(seed=seed)
    policy = harness.config.chaos
    coordinator, committer, aborter = SiteId(1), SiteId(2), SiteId(3)
    started = time.monotonic()

    harness.start()
    # Gateway at site 2: the client's decided reply comes from the
    # survivor side of the split, while the coordinator hangs in
    # *prepared* waiting for an ack the gray link ate.
    harness.begin(txn_id, gateway=committer, wait=True)

    def participants_decided(
        views: dict[SiteId, Optional[dict[str, Any]]]
    ) -> bool:
        return all(
            views[s] is not None
            and views[s]["outcome"] in ("commit", "abort")
            for s in (committer, aborter)
        )

    views = harness.wait_outcomes(
        txn_id,
        participants_decided,
        harness.config.decide_timeout,
        "participants terminating solo under gray links",
    )
    outcomes = {
        int(s): views[s]["outcome"]
        for s in (committer, aborter)
        if views[s] is not None
    }
    coordinator_view = views[coordinator]
    coordinator_outcome = (
        str(coordinator_view["outcome"])
        if coordinator_view is not None
        else "down"
    )

    violation = ""
    try:
        harness.audit_atomicity(txn_id)
    except AtomicityViolationError as error:
        violation = str(error)
    split = len(set(outcomes.values())) > 1

    # The durable evidence: the per-site DT logs must already disagree.
    from repro.live.audit import audit_data_dir

    report = audit_data_dir(harness.config.data_dir, include_traces=False)
    suspected = {}
    for site in harness.ports:
        snapshot = harness.site_metrics(site)
        if snapshot is not None:
            suspected[int(site)] = list(
                snapshot.get("live", {}).get("suspected", [])
            )

    if not split or report.ok():
        raise ClusterError(
            "gray-failure scenario did not reproduce the split decision: "
            f"outcomes={outcomes}, audit_ok={report.ok()} "
            f"(chaos {policy.hash})"
        )
    return GrayFailureResult(
        protocol=spec_name,
        chaos_hash=policy.hash,
        split_detected=split,
        outcomes=outcomes,
        coordinator_outcome=coordinator_outcome,
        violation=violation,
        audit_ok=report.ok(),
        audit_violations=list(report.violations),
        suspected=suspected,
        total_s=round(time.monotonic() - started, 3),
    )
