"""The durable on-disk DT log for live sites.

A site's DT log is the *only* state that survives ``kill -9``.  The
paper's recovery protocol is specified entirely in terms of what the
log holds at restart (no vote → unilateral abort allowed; yes vote but
no decision → in doubt, ask the operational sites; decision → re-apply),
so making the log real makes recovery real.

Layout — one append-only text file per site, one record per line::

    crc32(body):08x SP body JSON NL

The CRC frames each record independently: a record is valid only if the
line is newline-terminated, the checksum matches, and the body parses.
A *forced* record is durable (flushed + ``fsync``-ed) before anything
that depends on it leaves the site — the engine forces the vote before
transmitting it and the decision before acting on it, exactly the
write-ahead discipline the paper assumes — so a record either hit the
platter or the site provably never acted on it.

Group commit: Skeen's protocols are per-transaction FSAs with no
cross-transaction ordering constraint, so concurrent transactions'
forced records can share one ``fsync`` (Gray's classic group-commit
discipline).  Appends buffer in memory and are assigned a log sequence
number (LSN); a single flusher task wakes, writes every buffered
record, and issues **one** ``fsync`` for the whole batch.  Durability
is exposed as an LSN watermark (:meth:`SiteLogStore.wait_durable`),
which the live transport uses as a send barrier: a frame carrying a
vote or decision does not reach the socket until the record it depends
on is durable.  The durability *point* is therefore unchanged — only
its cost is amortized, measurable as ``fsync_calls < forced_writes``.
Without a running flusher (unit tests, boot-time records) every forced
append falls back to an immediate flush + ``fsync``.

Torn-tail rule on replay: a malformed **last** line is the in-flight
write the crash interrupted; it is dropped (the site never acted on it,
by the forced-write discipline).  A malformed line *followed by valid
records* cannot be explained by a crash and raises
:class:`~repro.errors.WALError` — the file is corrupt, not torn.

The store is shared by all transactions at a site; each transaction
sees its own slice through :class:`DurableDTLog`, a drop-in subclass of
the in-memory :class:`~repro.runtime.log.DTLog` the engine writes to.
A ``boot`` record is forced at every open, so a replaying site can tell
"fresh" from "restarted" — the distinction the recovery protocol's
unilateral-abort rule turns on.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import zlib
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.errors import WALError
from repro.runtime.log import (
    DecisionRecord,
    DTLog,
    LogRecord,
    MembershipRecord,
    VoteRecord,
)
from repro.types import Outcome, SiteId, Vote

#: Below this smoothed fsync duration the flusher calls ``fsync``
#: inline on the event loop; above it, in a worker thread.  Handing a
#: sub-millisecond fsync to the thread pool costs more in wakeup and
#: GIL churn than the syscall itself (acutely so on one core), while a
#: spinning disk's multi-millisecond fsync would stall every frame the
#: loop should be reading — so the choice follows the measured device.
FSYNC_INLINE_THRESHOLD_S = 0.002


def delayed_fsync(
    delay_s: float, fsync: Callable[[int], None] = os.fsync
) -> Callable[[int], None]:
    """An ``fsync`` that models a slow disk: sleep, then really sync.

    The chaos seam injects this into :class:`SiteLogStore` to emulate
    spinning-disk or congested-EBS fsync latency.  The sleep happens
    wherever the flusher runs the fsync, so a delay above
    :data:`FSYNC_INLINE_THRESHOLD_S` first stalls the event loop a few
    batches, then — once the EMA has learned the device — migrates to
    the executor: the adaptive-placement path a fast CI disk never
    exercises.
    """
    if delay_s < 0:
        raise ValueError(f"fsync delay must be >= 0, got {delay_s}")

    def slow_fsync(fileno: int) -> None:
        time.sleep(delay_s)
        fsync(fileno)

    return slow_fsync


def _encode_line(body: dict[str, Any]) -> bytes:
    text = json.dumps(body, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}\n".encode("utf-8")


def _decode_line(line: bytes) -> Optional[dict[str, Any]]:
    """Parse one framed line; ``None`` if torn or corrupt."""
    if not line.endswith(b"\n"):
        return None
    try:
        text = line[:-1].decode("utf-8")
    except UnicodeDecodeError:
        return None
    if len(text) < 9 or text[8] != " ":
        return None
    crc_hex, body_text = text[:8], text[9:]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(body_text.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        body = json.loads(body_text)
    except json.JSONDecodeError:
        return None
    return body if isinstance(body, dict) else None


def read_log_file(path: Union[str, Path]) -> tuple[list[dict[str, Any]], bool]:
    """Replay one log file; returns ``(records, torn_tail)``.

    Raises:
        WALError: On mid-log corruption — an invalid record that is not
            the file's last line.
    """
    path = Path(path)
    if not path.exists():
        return [], False
    records: list[dict[str, Any]] = []
    lines = path.read_bytes().splitlines(keepends=True)
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        body = _decode_line(line)
        if body is None:
            if index == len(lines) - 1:
                return records, True
            raise WALError(
                f"{path}: corrupt record at line {index + 1} "
                f"(not the tail — cannot be a torn write)"
            )
        records.append(body)
    return records, False


def _record_to_body(txn: int, record: LogRecord) -> dict[str, Any]:
    if isinstance(record, VoteRecord):
        return {"r": "vote", "txn": txn, "vote": record.vote.value, "at": record.at}
    if isinstance(record, DecisionRecord):
        return {
            "r": "decision",
            "txn": txn,
            "outcome": record.outcome.value,
            "at": record.at,
            "via": record.via,
        }
    if isinstance(record, MembershipRecord):
        return {
            "r": "membership",
            "txn": txn,
            "members": [int(site) for site in record.members],
            "at": record.at,
        }
    raise WALError(f"unknown log record {record!r}")


def _body_to_record(body: dict[str, Any]) -> LogRecord:
    kind = body.get("r")
    try:
        if kind == "vote":
            return VoteRecord(vote=Vote(body["vote"]), at=float(body["at"]))
        if kind == "decision":
            return DecisionRecord(
                outcome=Outcome(body["outcome"]),
                at=float(body["at"]),
                via=str(body["via"]),
            )
        if kind == "membership":
            return MembershipRecord(
                members=tuple(SiteId(int(m)) for m in body["members"]),
                at=float(body["at"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise WALError(f"malformed {kind!r} record: {error}") from error
    raise WALError(f"unknown record kind {kind!r}")


class SiteLogStore:
    """One site's durable DT log file, shared across transactions.

    Opening the store replays any existing file (enforcing the
    torn-tail rule), then forces a ``boot`` record.  ``boot_count > 1``
    therefore means this process is a *restart* of a site that ran
    before — the condition under which recovery's unilateral-abort rule
    applies to transactions the log has no vote for.

    Appends buffer in memory and are assigned a monotonically
    increasing LSN.  A forced append either triggers an immediate
    flush + ``fsync`` (no flusher running — the synchronous fallback)
    or wakes the group-commit flusher started by
    :meth:`start_group_commit`, which batches everything buffered into
    one ``fsync`` and advances :attr:`durable_lsn`.  Non-forced appends
    just buffer; the next forced write or :meth:`close` carries them
    out.  ``forced_writes`` counts records that *demanded* durability,
    ``fsync_calls`` the syscalls actually paid — group commit is
    working exactly when the latter stays below the former.

    Args:
        path: The log file.
        fsync: The fsync implementation (injectable for durability-
            ordering tests; production uses ``os.fsync``).
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: Callable[[int], None] = os.fsync,
    ) -> None:
        self.path = Path(path)
        self.forced_writes = 0
        #: Records a commit presumption let through without durability
        #: (appended lazily, no fsync demanded) — the live measure of
        #: what presumed abort/commit saves on the log device.
        self.forced_writes_skipped = 0
        self.fsync_calls = 0
        self.torn_tail_dropped = False
        self._fsync = fsync
        self._by_txn: dict[int, list[LogRecord]] = {}
        self.boot_count = 0
        #: Per-fsync batch-size hook (records made durable by that call).
        self.on_batch: Optional[Callable[[int], None]] = None
        #: Watermark hook: called with the new durable LSN after every
        #: fsync.  The live site publishes decisions from it directly —
        #: cheaper than a waiter future per decision on the hot path.
        self.on_durable: Optional[Callable[[int], None]] = None
        self._buffer: list[bytes] = []
        self._pending_lsn = 0
        self._last_forced_lsn = 0
        self._durable_lsn = 0
        self._waiters: list[tuple[int, asyncio.Future]] = []
        self._fsync_ema: Optional[float] = None
        #: Duration of the most recent fsync, seconds (None before the
        #: first).  Read by the live site's fsync-span instrumentation.
        self.last_fsync_s: Optional[float] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._flush_wanted: Optional[asyncio.Event] = None
        self._flush_stop = False
        bodies, self.torn_tail_dropped = read_log_file(self.path)
        for body in bodies:
            if body.get("r") == "boot":
                self.boot_count += 1
                continue
            txn = int(body["txn"])
            self._by_txn.setdefault(txn, []).append(_body_to_record(body))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self.boot_count += 1
        self._append({"r": "boot", "boot": self.boot_count}, force=True)

    @property
    def restarted(self) -> bool:
        """Whether a previous incarnation of this site wrote the file."""
        return self.boot_count > 1

    @property
    def pending_lsn(self) -> int:
        """LSN of the most recently appended (not necessarily durable) record."""
        return self._pending_lsn

    @property
    def last_forced_lsn(self) -> int:
        """LSN of the most recent append that demanded durability.

        The send barrier gates on this, not :attr:`pending_lsn`: a
        lazily appended record (a presumption-redundant vote or
        decision) must not hold frames back waiting for an fsync nobody
        asked for.  With no lazy appends the two watermarks coincide.
        """
        return self._last_forced_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known to be flushed and fsynced."""
        return self._durable_lsn

    def txn_ids(self) -> list[int]:
        """Transactions with at least one surviving record, sorted."""
        return sorted(self._by_txn)

    def records_for(self, txn: int) -> list[LogRecord]:
        """Surviving records for one transaction, in append order."""
        return list(self._by_txn.get(txn, ()))

    def append_record(self, txn: int, record: LogRecord, force: bool = True) -> int:
        """Append one transaction record; returns its LSN.

        With ``force`` the record is durable before the call returns
        (synchronous fallback) or before :meth:`wait_durable` of the
        returned LSN resolves (group-commit mode).
        """
        lsn = self._append(_record_to_body(txn, record), force=force)
        self._by_txn.setdefault(txn, []).append(record)
        return lsn

    def _append(self, body: dict[str, Any], force: bool) -> int:
        if self._file.closed:
            raise WALError(f"{self.path}: store is closed")
        self._buffer.append(_encode_line(body))
        self._pending_lsn += 1
        lsn = self._pending_lsn
        if force:
            self.forced_writes += 1
            self._last_forced_lsn = lsn
            if self._flush_task is not None:
                assert self._flush_wanted is not None
                self._flush_wanted.set()
            else:
                self._flush_now()
        else:
            self.forced_writes_skipped += 1
        return lsn

    # -- Group commit ---------------------------------------------------

    def start_group_commit(self) -> None:
        """Start the flusher task (requires a running event loop).

        From here on, forced appends enqueue onto the single flusher
        instead of paying their own ``fsync``; call
        :meth:`stop_group_commit` before :meth:`close`.
        """
        if self._flush_task is not None:
            return
        self._flush_stop = False
        self._flush_wanted = asyncio.Event()
        self._flush_task = asyncio.get_running_loop().create_task(
            self._flush_loop()
        )

    async def stop_group_commit(self) -> None:
        """Drain the flusher and return to synchronous mode (idempotent)."""
        task = self._flush_task
        if task is None:
            return
        self._flush_stop = True
        assert self._flush_wanted is not None
        self._flush_wanted.set()
        try:
            await task
        except asyncio.CancelledError:  # pragma: no cover - teardown race
            pass
        self._flush_task = None
        self._flush_wanted = None
        if not self._file.closed:
            self._flush_now()

    async def _flush_loop(self) -> None:
        """The single group-commit flusher: one fsync per wakeup.

        A fast fsync (smoothed duration under
        :data:`FSYNC_INLINE_THRESHOLD_S`) runs inline; a slow one runs
        in a worker thread so the event loop keeps accepting frames
        (and buffering more records) while the batch hits the platter —
        the next batch grows with load, which is where the
        amortization comes from.
        """
        loop = asyncio.get_running_loop()
        assert self._flush_wanted is not None
        while True:
            await self._flush_wanted.wait()
            self._flush_wanted.clear()
            if self._buffer and not self._file.closed:
                data = b"".join(self._buffer)
                batch = len(self._buffer)
                upto = self._pending_lsn
                self._buffer.clear()
                self._file.write(data)
                self._file.flush()
                ema = self._fsync_ema
                if ema is not None and ema < FSYNC_INLINE_THRESHOLD_S:
                    self._timed_fsync(self._file.fileno())
                else:
                    await loop.run_in_executor(
                        None, self._timed_fsync, self._file.fileno()
                    )
                self._mark_durable(upto, batch)
            if self._flush_stop:
                return

    def _flush_now(self) -> None:
        """Synchronous fallback: flush + fsync everything buffered."""
        if not self._buffer:
            return
        data = b"".join(self._buffer)
        batch = len(self._buffer)
        upto = self._pending_lsn
        self._buffer.clear()
        self._file.write(data)
        self._file.flush()
        self._timed_fsync(self._file.fileno())
        self._mark_durable(upto, batch)

    def _timed_fsync(self, fileno: int) -> None:
        """Run the fsync and fold its duration into the device EMA.

        The boot record's synchronous fsync seeds the estimate, so the
        flusher's first batch already knows how the device behaves.
        """
        start = time.perf_counter()
        self._fsync(fileno)
        elapsed = time.perf_counter() - start
        self.last_fsync_s = elapsed
        ema = self._fsync_ema
        self._fsync_ema = elapsed if ema is None else ema * 0.8 + elapsed * 0.2

    def _mark_durable(self, upto: int, batch: int) -> None:
        self.fsync_calls += 1
        self._durable_lsn = upto
        if self.on_batch is not None:
            self.on_batch(batch)
        if self._waiters:
            remaining = []
            for lsn, future in self._waiters:
                if lsn <= upto:
                    if not future.done():
                        future.set_result(None)
                else:
                    remaining.append((lsn, future))
            self._waiters = remaining
        if self.on_durable is not None:
            self.on_durable(upto)

    async def wait_durable(self, lsn: int) -> None:
        """Resolve once every record up to ``lsn`` is flushed + fsynced.

        In synchronous mode (no flusher) this forces the buffer out
        immediately, so callers can gate on durability without caring
        which mode the store is in.
        """
        if lsn <= self._durable_lsn:
            return
        if self._flush_task is None:
            self._flush_now()
            return
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append((lsn, future))
        await future

    def close(self) -> None:
        """Flush buffered records and close the file (idempotent).

        :meth:`stop_group_commit` must have run first when the flusher
        was started; buffered non-forced records are written out (not
        fsynced — they never promised durability).
        """
        if not self._file.closed:
            if self._buffer:
                self._file.write(b"".join(self._buffer))
                self._buffer.clear()
            self._file.flush()
            self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteLogStore({str(self.path)!r}, boot={self.boot_count}, "
            f"txns={len(self._by_txn)}, forced={self.forced_writes}, "
            f"fsyncs={self.fsync_calls})"
        )


class DurableDTLog(DTLog):
    """A per-transaction view of a :class:`SiteLogStore`.

    Drop-in for the in-memory :class:`~repro.runtime.log.DTLog`: the
    engine and controllers call the same ``write_vote`` /
    ``write_decision``, and every record that passes the in-memory
    invariants is also forced to disk before the call returns — the
    write-ahead ordering the recovery proof depends on.

    Construction replays the store's surviving records for this
    transaction through the in-memory write path, so a restarted site's
    log object starts exactly where the crashed incarnation's ended.
    """

    def __init__(self, store: SiteLogStore, txn: int) -> None:
        super().__init__()
        self._store = store
        self._txn = txn
        for record in store.records_for(txn):
            if isinstance(record, VoteRecord):
                super().write_vote(record.vote, record.at)
            elif isinstance(record, MembershipRecord):
                super().write_membership(record.members, record.at)
            else:
                super().write_decision(record.outcome, record.at, via=record.via)

    def write_vote(self, vote: Vote, at: float, forced: bool = True) -> None:
        super().write_vote(vote, at)
        self._store.append_record(self._txn, self.records[-1], force=forced)

    def write_decision(
        self, outcome: Outcome, at: float, via: str, forced: bool = True
    ) -> None:
        before = len(self)
        super().write_decision(outcome, at, via=via)
        if len(self) > before:  # Same-outcome re-log is a no-op; don't re-force.
            self._store.append_record(self._txn, self.records[-1], force=forced)

    def write_membership(self, members, at: float) -> None:
        super().write_membership(members, at)
        self._store.append_record(self._txn, self.records[-1], force=True)
