"""The durable on-disk DT log for live sites.

A site's DT log is the *only* state that survives ``kill -9``.  The
paper's recovery protocol is specified entirely in terms of what the
log holds at restart (no vote → unilateral abort allowed; yes vote but
no decision → in doubt, ask the operational sites; decision → re-apply),
so making the log real makes recovery real.

Layout — one append-only text file per site, one record per line::

    crc32(body):08x SP body JSON NL

The CRC frames each record independently: a record is valid only if the
line is newline-terminated, the checksum matches, and the body parses.
``fsync`` runs after every *forced* record — the engine forces the vote
before transmitting it and the decision before acting on it, exactly
the write-ahead discipline the paper assumes — so a record either hit
the platter or the site provably never acted on it.

Torn-tail rule on replay: a malformed **last** line is the in-flight
write the crash interrupted; it is dropped (the site never acted on it,
by the forced-write discipline).  A malformed line *followed by valid
records* cannot be explained by a crash and raises
:class:`~repro.errors.WALError` — the file is corrupt, not torn.

The store is shared by all transactions at a site; each transaction
sees its own slice through :class:`DurableDTLog`, a drop-in subclass of
the in-memory :class:`~repro.runtime.log.DTLog` the engine writes to.
A ``boot`` record is forced at every open, so a replaying site can tell
"fresh" from "restarted" — the distinction the recovery protocol's
unilateral-abort rule turns on.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import WALError
from repro.runtime.log import DecisionRecord, DTLog, VoteRecord
from repro.types import Outcome, Vote


def _encode_line(body: dict[str, Any]) -> bytes:
    text = json.dumps(body, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}\n".encode("utf-8")


def _decode_line(line: bytes) -> Optional[dict[str, Any]]:
    """Parse one framed line; ``None`` if torn or corrupt."""
    if not line.endswith(b"\n"):
        return None
    try:
        text = line[:-1].decode("utf-8")
    except UnicodeDecodeError:
        return None
    if len(text) < 9 or text[8] != " ":
        return None
    crc_hex, body_text = text[:8], text[9:]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(body_text.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        body = json.loads(body_text)
    except json.JSONDecodeError:
        return None
    return body if isinstance(body, dict) else None


def read_log_file(path: Union[str, Path]) -> tuple[list[dict[str, Any]], bool]:
    """Replay one log file; returns ``(records, torn_tail)``.

    Raises:
        WALError: On mid-log corruption — an invalid record that is not
            the file's last line.
    """
    path = Path(path)
    if not path.exists():
        return [], False
    records: list[dict[str, Any]] = []
    lines = path.read_bytes().splitlines(keepends=True)
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        body = _decode_line(line)
        if body is None:
            if index == len(lines) - 1:
                return records, True
            raise WALError(
                f"{path}: corrupt record at line {index + 1} "
                f"(not the tail — cannot be a torn write)"
            )
        records.append(body)
    return records, False


def _record_to_body(txn: int, record: Union[VoteRecord, DecisionRecord]) -> dict[str, Any]:
    if isinstance(record, VoteRecord):
        return {"r": "vote", "txn": txn, "vote": record.vote.value, "at": record.at}
    if isinstance(record, DecisionRecord):
        return {
            "r": "decision",
            "txn": txn,
            "outcome": record.outcome.value,
            "at": record.at,
            "via": record.via,
        }
    raise WALError(f"unknown log record {record!r}")


def _body_to_record(body: dict[str, Any]) -> Union[VoteRecord, DecisionRecord]:
    kind = body.get("r")
    try:
        if kind == "vote":
            return VoteRecord(vote=Vote(body["vote"]), at=float(body["at"]))
        if kind == "decision":
            return DecisionRecord(
                outcome=Outcome(body["outcome"]),
                at=float(body["at"]),
                via=str(body["via"]),
            )
    except (KeyError, ValueError) as error:
        raise WALError(f"malformed {kind!r} record: {error}") from error
    raise WALError(f"unknown record kind {kind!r}")


class SiteLogStore:
    """One site's durable DT log file, shared across transactions.

    Opening the store replays any existing file (enforcing the
    torn-tail rule), then forces a ``boot`` record.  ``boot_count > 1``
    therefore means this process is a *restart* of a site that ran
    before — the condition under which recovery's unilateral-abort rule
    applies to transactions the log has no vote for.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.forced_writes = 0
        self.torn_tail_dropped = False
        self._by_txn: dict[int, list[Union[VoteRecord, DecisionRecord]]] = {}
        self.boot_count = 0
        bodies, self.torn_tail_dropped = read_log_file(self.path)
        for body in bodies:
            if body.get("r") == "boot":
                self.boot_count += 1
                continue
            txn = int(body["txn"])
            self._by_txn.setdefault(txn, []).append(_body_to_record(body))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self.boot_count += 1
        self._append({"r": "boot", "boot": self.boot_count}, force=True)

    @property
    def restarted(self) -> bool:
        """Whether a previous incarnation of this site wrote the file."""
        return self.boot_count > 1

    def txn_ids(self) -> list[int]:
        """Transactions with at least one surviving record, sorted."""
        return sorted(self._by_txn)

    def records_for(self, txn: int) -> list[Union[VoteRecord, DecisionRecord]]:
        """Surviving records for one transaction, in append order."""
        return list(self._by_txn.get(txn, ()))

    def append_record(
        self, txn: int, record: Union[VoteRecord, DecisionRecord], force: bool = True
    ) -> None:
        """Append (and by default fsync) one transaction record."""
        self._append(_record_to_body(txn, record), force=force)
        self._by_txn.setdefault(txn, []).append(record)

    def _append(self, body: dict[str, Any], force: bool) -> None:
        if self._file.closed:
            raise WALError(f"{self.path}: store is closed")
        self._file.write(_encode_line(body))
        if force:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.forced_writes += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteLogStore({str(self.path)!r}, boot={self.boot_count}, "
            f"txns={len(self._by_txn)}, forced={self.forced_writes})"
        )


class DurableDTLog(DTLog):
    """A per-transaction view of a :class:`SiteLogStore`.

    Drop-in for the in-memory :class:`~repro.runtime.log.DTLog`: the
    engine and controllers call the same ``write_vote`` /
    ``write_decision``, and every record that passes the in-memory
    invariants is also forced to disk before the call returns — the
    write-ahead ordering the recovery proof depends on.

    Construction replays the store's surviving records for this
    transaction through the in-memory write path, so a restarted site's
    log object starts exactly where the crashed incarnation's ended.
    """

    def __init__(self, store: SiteLogStore, txn: int) -> None:
        super().__init__()
        self._store = store
        self._txn = txn
        for record in store.records_for(txn):
            if isinstance(record, VoteRecord):
                super().write_vote(record.vote, record.at)
            else:
                super().write_decision(record.outcome, record.at, via=record.via)

    def write_vote(self, vote: Vote, at: float) -> None:
        super().write_vote(vote, at)
        self._store.append_record(self._txn, self.records[-1], force=True)

    def write_decision(self, outcome: Outcome, at: float, via: str) -> None:
        before = len(self)
        super().write_decision(outcome, at, via=via)
        if len(self) > before:  # Same-outcome re-log is a no-op; don't re-force.
            self._store.append_record(self._txn, self.records[-1], force=True)
