"""The wire format: length-prefixed JSON frames.

One frame = a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON (one object).  JSON keeps the format debuggable
(``tcpdump``/``strace`` show readable protocol traffic) and versionable;
the length prefix makes framing trivial and torn reads detectable.

Two layers share the format:

* **control frames** — connection handshake (``hello``), liveness
  (``hb``), client traffic (``begin`` / ``status`` / ``decided`` /
  ``status-reply``), external-input forwarding (``external``), and
  graceful shutdown (``shutdown``);
* **payload frames** (``t = "payload"``) — the runtime's own message
  dataclasses (:class:`~repro.runtime.messages.ProtoMsg`, the
  ``Term*`` family, the ``Outcome*`` family), round-tripped through
  :func:`encode_payload` / :func:`decode_payload` so *the protocol
  layer's types never change* between the simulator and the wire.

Frames larger than :data:`MAX_FRAME` are rejected — nothing the commit
protocols send comes within orders of magnitude of it, so an oversized
length prefix means a corrupt or hostile peer.

**Trace context** rides in two optional frame keys: ``sid`` is the
span id the sender assigned to this message's ``net.send`` trace
event, ``pid`` the span the send was causally triggered by (the
message whose delivery the sender was handling).  The receiver echoes
``sid`` as the ``msg_id`` of its ``net.deliver`` / ``net.drop`` event,
which is exactly the contract :class:`repro.sim.spans.SpanIndex`
expects — so the simulator's span tooling reconstructs live
cross-process message spans unchanged.  Frames that carry no protocol
causality (heartbeats, hellos, client traffic) are never stamped.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Optional

from repro.errors import FrameError
from repro.net.message import Payload
from repro.runtime.messages import (
    OutcomeQuery,
    OutcomeReply,
    ProtoMsg,
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.types import Outcome, SiteId

#: Hard cap on one frame's JSON body, in bytes.
MAX_FRAME = 1 << 20

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------------
# Trace context
# ----------------------------------------------------------------------


def stamp_trace_context(
    frame: dict[str, Any],
    span_id: int,
    parent: Optional[int] = None,
) -> dict[str, Any]:
    """Stamp a frame with its span id (and optional parent span) in place.

    Returns the frame for chaining.  ``parent`` is omitted from the
    wire entirely when ``None`` — root spans stay one key smaller.
    """
    frame["sid"] = int(span_id)
    if parent is not None:
        frame["pid"] = int(parent)
    return frame


def trace_context(frame: dict[str, Any]) -> tuple[Optional[int], Optional[int]]:
    """Extract ``(span_id, parent_span_id)`` from a frame (None if unstamped)."""
    sid = frame.get("sid")
    pid = frame.get("pid")
    return (
        int(sid) if sid is not None else None,
        int(pid) if pid is not None else None,
    )


# ----------------------------------------------------------------------
# Frame layer
# ----------------------------------------------------------------------


#: One shared encoder instance: ``json.dumps`` with non-default options
#: builds a fresh ``JSONEncoder`` per call, which is measurable at
#: frame rates on a single-core host.
_ENCODE_JSON = json.JSONEncoder(separators=(",", ":"), sort_keys=True).encode


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialize one frame: length prefix + compact, key-sorted JSON.

    Sorted keys make frames deterministic for a given object, which
    keeps wire-level tests and traces stable.

    Raises:
        FrameError: If the encoded body exceeds :data:`MAX_FRAME`.
    """
    body = _ENCODE_JSON(obj).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _LENGTH.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises:
        FrameError: On a truncated frame, an oversized length prefix,
            or a body that is not a JSON object.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # Clean EOF between frames.
        raise FrameError("connection closed mid-length-prefix") from error
    (length,) = _LENGTH.unpack(prefix)
    if length == 0:
        # A frame body is always at least "{}"; a zero-length prefix is
        # a corrupt or hostile peer, rejected the same way in every
        # decoder (here, FrameDecoder, and the binary codec's).
        raise FrameError("zero-length frame is malformed")
    if length > MAX_FRAME:
        raise FrameError(f"length prefix {length} exceeds MAX_FRAME")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"connection closed mid-frame ({len(error.partial)}/{length} bytes)"
        ) from error
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(obj, dict):
        raise FrameError(f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


class FrameDecoder:
    """Incremental frame decoder: feed raw bytes, take complete frames.

    The receive-side complement of sender coalescing — a peer packs
    many frames into one socket write, so the receiver pulls whatever
    the socket has buffered and splits it synchronously instead of
    paying two stream awaits per frame.  Partial frames stay buffered
    until the next ``feed``.

    :attr:`hwm` records the largest number of bytes the buffer ever
    held right after an append — the receive-side backlog gauge.  A
    high-water mark creeping toward :data:`MAX_FRAME` means a peer is
    outpacing this site's event loop (or dribbling a huge frame), the
    kind of gray-failure signal a soak harness watches for.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        #: Largest buffered byte count ever observed (monotonic).
        self.hwm = 0

    @property
    def pending(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Append bytes; return every frame completed by them, in order.

        Raises:
            FrameError: On an oversized length prefix or a body that is
                not a JSON object.
        """
        buf = self._buf
        buf += data
        if len(buf) > self.hwm:
            self.hwm = len(buf)
        frames: list[dict[str, Any]] = []
        offset = 0
        while len(buf) - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buf, offset)
            if length == 0:
                raise FrameError("zero-length frame is malformed")
            if length > MAX_FRAME:
                raise FrameError(f"length prefix {length} exceeds MAX_FRAME")
            end = offset + _LENGTH.size + length
            if len(buf) < end:
                break
            try:
                obj = json.loads(
                    bytes(buf[offset + _LENGTH.size : end]).decode("utf-8")
                )
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise FrameError(f"frame body is not valid JSON: {error}") from error
            if not isinstance(obj, dict):
                raise FrameError(
                    f"frame body must be a JSON object, got {type(obj).__name__}"
                )
            frames.append(obj)
            offset = end
        if offset:
            del buf[:offset]
        return frames


def decode_frame_bytes(data: bytes) -> tuple[dict[str, Any], bytes]:
    """Synchronous single-frame decode; returns (frame, remaining bytes).

    The test-facing inverse of :func:`encode_frame` (the live runtime
    itself reads from stream readers via :func:`read_frame`).

    Raises:
        FrameError: On truncation or malformed JSON.
    """
    if len(data) < _LENGTH.size:
        raise FrameError("buffer shorter than a length prefix")
    (length,) = _LENGTH.unpack(data[: _LENGTH.size])
    if length == 0:
        raise FrameError("zero-length frame is malformed")
    if length > MAX_FRAME:
        raise FrameError(f"length prefix {length} exceeds MAX_FRAME")
    end = _LENGTH.size + length
    if len(data) < end:
        raise FrameError(f"truncated frame ({len(data) - _LENGTH.size}/{length} bytes)")
    obj = json.loads(data[_LENGTH.size : end].decode("utf-8"))
    if not isinstance(obj, dict):
        raise FrameError("frame body must be a JSON object")
    return obj, data[end:]


# ----------------------------------------------------------------------
# Payload codec
# ----------------------------------------------------------------------

_ENCODERS: dict[type, Callable[[Any], dict[str, Any]]] = {
    ProtoMsg: lambda p: {"p": "proto", "kind": p.kind},
    TermMoveTo: lambda p: {
        "p": "term-move-to",
        "backup": int(p.backup),
        "state": p.state,
        "round": p.round_no,
    },
    TermAck: lambda p: {"p": "term-ack", "round": p.round_no},
    TermDecision: lambda p: {
        "p": "term-decision",
        "outcome": p.outcome.value,
        "round": p.round_no,
    },
    TermBlocked: lambda p: {"p": "term-blocked", "round": p.round_no},
    TermStateQuery: lambda p: {
        "p": "term-state-query",
        "backup": int(p.backup),
        "round": p.round_no,
    },
    TermStateReply: lambda p: {
        "p": "term-state-reply",
        "state": p.state,
        "outcome": p.outcome.value,
        "round": p.round_no,
    },
    OutcomeQuery: lambda p: {"p": "outcome-query"},
    OutcomeReply: lambda p: {
        "p": "outcome-reply",
        "outcome": p.outcome.value,
        "in_doubt": p.recovered_in_doubt,
    },
}

_DECODERS: dict[str, Callable[[dict[str, Any]], Payload]] = {
    "proto": lambda d: ProtoMsg(str(d["kind"])),
    "term-move-to": lambda d: TermMoveTo(
        SiteId(int(d["backup"])), str(d["state"]), int(d["round"])
    ),
    "term-ack": lambda d: TermAck(int(d["round"])),
    "term-decision": lambda d: TermDecision(
        Outcome(d["outcome"]), int(d["round"])
    ),
    "term-blocked": lambda d: TermBlocked(int(d["round"])),
    "term-state-query": lambda d: TermStateQuery(
        SiteId(int(d["backup"])), int(d["round"])
    ),
    "term-state-reply": lambda d: TermStateReply(
        str(d["state"]), Outcome(d["outcome"]), int(d["round"])
    ),
    "outcome-query": lambda d: OutcomeQuery(),
    "outcome-reply": lambda d: OutcomeReply(
        Outcome(d["outcome"]), recovered_in_doubt=bool(d.get("in_doubt", False))
    ),
}


def encode_payload(payload: Payload) -> dict[str, Any]:
    """Encode one runtime payload dataclass as a JSON-safe dict.

    Raises:
        FrameError: If the payload type has no wire encoding.
    """
    encoder = _ENCODERS.get(type(payload))
    if encoder is None:
        raise FrameError(f"payload type {type(payload).__name__} has no wire codec")
    return encoder(payload)


def decode_payload(data: dict[str, Any]) -> Payload:
    """Decode :func:`encode_payload` output back to the dataclass.

    Raises:
        FrameError: On an unknown payload tag or missing fields.
    """
    tag = data.get("p")
    decoder = _DECODERS.get(tag)  # type: ignore[arg-type]
    if decoder is None:
        raise FrameError(f"unknown payload tag {tag!r}")
    try:
        return decoder(data)
    except (KeyError, ValueError, TypeError) as error:
        raise FrameError(f"malformed {tag!r} payload: {error}") from error
