"""Wall-clock implementation of the :class:`repro.sim.clock.Clock` seam.

The protocol controllers arm timers in *seconds* without caring whether
those seconds are virtual or real.  :class:`TimeoutClock` makes them
real: ``now`` reads ``time.monotonic`` (immune to NTP steps and
``settimeofday``) and ``call_later`` schedules on the running asyncio
event loop.  A live site hands this clock to the same termination and
recovery controllers the simulator drives in virtual time.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional

from repro.types import SimTime


class WallTimer:
    """A cancellable handle over one ``loop.call_later`` callback.

    Satisfies the :class:`repro.sim.clock.TimerHandle` protocol.
    ``cancelled`` is true only for timers cancelled before firing, not
    for timers that already ran — matching the simulator's
    :class:`~repro.sim.events.EventHandle` semantics.
    """

    def __init__(self, handle: asyncio.TimerHandle, label: str = "") -> None:
        self._handle = handle
        self._cancelled = False
        self._fired = False
        self.label = label

    @property
    def cancelled(self) -> bool:
        """Whether the callback was cancelled before firing."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback has already run."""
        return self._fired

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent, no-op if fired)."""
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        self._handle.cancel()

    def _mark_fired(self) -> None:
        self._fired = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "armed")
        return f"WallTimer({self.label!r}, {state})"


class TimeoutClock:
    """The :class:`~repro.sim.clock.Clock` seam over asyncio wall time.

    Times are monotonic seconds relative to the clock's creation, so a
    freshly started site reads ``now() ≈ 0`` just like a freshly built
    simulator — keeping trace timestamps comparable across backends.

    The event loop is resolved lazily (at first ``call_later``) rather
    than at construction, so the clock can be built before the loop
    runs, e.g. in server bootstrap code.

    ``skew`` offsets every ``now()`` reading by a constant, emulating a
    site whose clock is set wrong.  Relative timers (``call_later``,
    ``now() - earlier_now()``) are unaffected — exactly like a real
    skewed-but-stable clock — but every *absolute* timestamp the site
    publishes (trace events, metrics snapshots) is shifted, which is
    what cross-site consumers of those timestamps must survive.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        skew: float = 0.0,
    ) -> None:
        self._loop = loop
        self._epoch = time.monotonic()
        self.skew = float(skew)

    def _running_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    def now(self) -> SimTime:
        """Monotonic seconds since this clock was created, plus skew."""
        return time.monotonic() - self._epoch + self.skew

    def call_later(
        self, delay: SimTime, callback: Callable[[], None], label: str = ""
    ) -> WallTimer:
        """Schedule ``callback`` after ``delay`` wall-clock seconds."""
        loop = self._running_loop()
        timer_box: list[WallTimer] = []

        def fire() -> None:
            timer_box[0]._mark_fired()
            callback()

        timer = WallTimer(loop.call_later(max(0.0, delay), fire), label=label)
        timer_box.append(timer)
        return timer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeoutClock(now={self.now():.3f})"
