"""Independent recovery analysis.

Slide 12 defers the recovery protocol's theory to the companion report
(SKEE81a, "Crash Recovery in a Distributed Database System").  The
central question: a site crashes while in local state ``s`` — which
outcomes can the *operational* sites reach before it returns?  If that
set is a single final outcome, the site can recover **independently**
(no communication needed: the outcome is forced); if both commit and
abort are possible, it must ask.

The computation explores the crashed-site-augmented behaviour the
paper's main analysis avoids (slide 21): from every global state where
the victim occupies ``s``, the operational sites may

* keep executing the commit protocol (the victim's mail is never read,
  and nothing more is ever heard from it), and
* at any moment, detect the failure and run the termination protocol —
  whose decision is the slide-39 rule applied to the elected backup's
  state at that moment.

Collecting every reachable final outcome over all interleavings gives
the *post-crash outcome set* of ``(site, s)``.  Expected results, which
:mod:`tests <tests.unit.test_analysis_recovery>` pin down:

* crashed before voting (``q``) → {abort}: unilateral abort on
  recovery is sound — exactly slide 6's rule;
* crashed after a yes vote (``w``, ``p``) → {abort, commit}: in doubt,
  must query — exactly what the runtime's recovery controller does;
* crashed in a final state → that outcome (the DT log already knows).

So this module is a machine-checked proof that the recovery
implementation in :mod:`repro.runtime.recovery` asks exactly when it
must and decides alone exactly when it may.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Optional

from repro.analysis.global_state import GlobalState
from repro.analysis.reachability import (
    DEFAULT_BUDGET,
    ReachableStateGraph,
    build_state_graph,
)
from repro.errors import AnalysisError, StateGraphTooLargeError
from repro.fsa.spec import ProtocolSpec
from repro.runtime.decision import TerminationRule
from repro.runtime.termination import lowest_id_election
from repro.types import Outcome, SiteId


@dataclasses.dataclass(frozen=True)
class RecoveryVerdict:
    """The independent-recovery classification of one (site, state).

    Attributes:
        site: The crash victim.
        state: The local state it crashed in.
        outcomes: Final outcomes the operational sites can reach.
        blocked_possible: Whether some interleaving leaves the
            operational sites blocked (waiting for the victim) —
            possible only under blocking protocols.
    """

    site: SiteId
    state: str
    outcomes: frozenset[Outcome]
    blocked_possible: bool

    @property
    def independent(self) -> Optional[Outcome]:
        """The outcome the victim may adopt alone, or ``None``.

        Independent recovery is sound when every operational future
        agrees on one outcome (a blocked future also agrees: blocked
        sites wait for the victim, who — adopting the forced outcome —
        resolves them consistently).
        """
        if len(self.outcomes) == 1:
            return next(iter(self.outcomes))
        return None


def post_crash_outcomes(
    spec: ProtocolSpec,
    site: SiteId,
    state: str,
    graph: Optional[ReachableStateGraph] = None,
    rule: Optional[TerminationRule] = None,
    budget: Optional[int] = DEFAULT_BUDGET,
) -> RecoveryVerdict:
    """Compute the post-crash outcome set for ``site`` crashed in ``state``.

    Args:
        spec: The protocol.
        site: The victim site.
        state: The victim's local state at crash time.
        graph: Pre-built failure-free graph (for crash snapshots).
        rule: Pre-built termination rule.
        budget: Node budget for the crashed-variant exploration.

    Returns:
        The :class:`RecoveryVerdict`.

    Raises:
        AnalysisError: If the state never occurs at the site.
        StateGraphTooLargeError: If exploration exceeds the budget.
    """
    if graph is None:
        graph = build_state_graph(spec, budget=budget)
    if rule is None:
        rule = TerminationRule(spec, graph=graph)

    snapshots = graph.occupancy(site, state)
    if not snapshots:
        raise AnalysisError(
            f"state {state!r} never occurs at site {site} in {spec.name!r}"
        )

    sites = tuple(spec.sites)
    operational = [s for s in sites if s != site]
    index = {s: i for i, s in enumerate(sites)}

    outcomes: set[Outcome] = set()
    blocked_possible = False
    seen: set[GlobalState] = set()
    queue: deque[GlobalState] = deque()
    for snapshot in snapshots:
        if snapshot not in seen:
            seen.add(snapshot)
            queue.append(snapshot)

    while queue:
        current = queue.popleft()

        # Event class 1: the failure is detected *now* and the
        # termination protocol runs.  The backup is the elected
        # operational site; its state decides (slide 39).
        backup = lowest_id_election(operational)
        decision = rule.decide(backup, current.locals[index[backup]])
        if decision is Outcome.BLOCKED:
            blocked_possible = True
        else:
            outcomes.add(decision)
        # Any operational site already in a final state contributes its
        # outcome too (it has decided regardless of termination).
        for other in operational:
            local = current.locals[index[other]]
            if spec.is_commit_state(other, local):
                outcomes.add(Outcome.COMMIT)
            elif spec.is_abort_state(other, local):
                outcomes.add(Outcome.ABORT)

        # Event class 2: the protocol continues without the victim.
        for other in operational:
            automaton = spec.automaton(other)
            local = current.locals[index[other]]
            for transition in automaton.out_transitions(local):
                if not transition.reads <= current.messages:
                    continue
                new_locals = list(current.locals)
                new_locals[index[other]] = transition.target
                successor = GlobalState(
                    locals=tuple(new_locals),
                    messages=(current.messages - transition.reads)
                    | frozenset(transition.writes),
                )
                if successor not in seen:
                    if budget is not None and len(seen) >= budget:
                        raise StateGraphTooLargeError(
                            f"post-crash exploration of {spec.name!r} "
                            f"exceeds budget {budget}"
                        )
                    seen.add(successor)
                    queue.append(successor)

    return RecoveryVerdict(
        site=site,
        state=state,
        outcomes=frozenset(outcomes),
        blocked_possible=blocked_possible,
    )


def independent_recovery_map(
    spec: ProtocolSpec,
    site: SiteId,
    budget: Optional[int] = DEFAULT_BUDGET,
) -> dict[str, RecoveryVerdict]:
    """The full per-state recovery classification for one site."""
    graph = build_state_graph(spec, budget=budget)
    rule = TerminationRule(spec, graph=graph)
    return {
        state: post_crash_outcomes(
            spec, site, state, graph=graph, rule=rule, budget=budget
        )
        for state in sorted(graph.reachable_local_states(site))
    }
