"""Concurrency sets.

Slide 19: "Assuming that the state of site k is s_k, it is possible to
derive from the global state graph the local states that may be
concurrently occupied by other sites.  This set of states is called the
concurrency set for state s_k."

Two views are provided:

* :func:`concurrency_set` — the precise per-site view: pairs
  ``(other_site, local_state)``;
* :func:`concurrency_labels` — the paper's role-collapsed view: just
  the state labels, as used in the canonical-2PC table of slide 32
  (``CS(w) = {q, w, a, c}``).
"""

from __future__ import annotations

from repro.analysis.reachability import ReachableStateGraph
from repro.errors import AnalysisError
from repro.types import SiteId


def concurrency_set(
    graph: ReachableStateGraph, site: SiteId, state: str
) -> frozenset[tuple[SiteId, str]]:
    """Local states of other sites coexisting with ``state`` at ``site``.

    Args:
        graph: A reachable state graph.
        site: The site occupying ``state``.
        state: A local state of ``site`` reachable in the graph.

    Returns:
        All ``(other_site, local_state)`` pairs occurring in some
        reachable global state where ``site`` occupies ``state``.

    Raises:
        AnalysisError: If ``state`` never occurs at ``site``.
    """
    occupancy = graph.occupancy(site, state)
    if not occupancy:
        raise AnalysisError(
            f"local state {state!r} of site {site} is unreachable in "
            f"{graph.spec.name!r}"
        )
    result: set[tuple[SiteId, str]] = set()
    for global_state in occupancy:
        for other, local in zip(graph.sites, global_state.locals):
            if other != site:
                result.add((other, local))
    return frozenset(result)


def concurrency_labels(
    graph: ReachableStateGraph, site: SiteId, state: str
) -> frozenset[str]:
    """Role-collapsed concurrency set: just the state labels.

    This is the paper's presentation for protocols where all sites run
    the same role (the canonical protocols of slides 32 and 40).
    """
    return frozenset(label for (_, label) in concurrency_set(graph, site, state))


def concurrency_table(
    graph: ReachableStateGraph, site: SiteId
) -> dict[str, frozenset[str]]:
    """The full concurrency-set table for one site, label-collapsed.

    Returns:
        Mapping from each reachable local state of ``site`` to its
        label-collapsed concurrency set — the shape of slide 32's table.
    """
    return {
        state: concurrency_labels(graph, site, state)
        for state in sorted(graph.reachable_local_states(site))
    }


def format_concurrency_table(table: dict[str, frozenset[str]]) -> str:
    """Render a concurrency table in the paper's ``CS(s) = {...}`` style."""
    lines = []
    for state in sorted(table):
        members = ", ".join(sorted(table[state]))
        lines.append(f"CS({state}) = {{{members}}}")
    return "\n".join(lines)
