"""Buffer-state synthesis: the paper's method for designing
nonblocking protocols.

Slide 34 demonstrates the method on the canonical 2PC: introducing a
buffer state ``p`` ("prepare to commit") between the wait state and the
commit state satisfies both constraints of the lemma and makes the
protocol nonblocking.  This module mechanizes that construction for
both protocol paradigms:

For every transition ``s -> c`` into a commit state whose source ``s``
is *noncommittable*, a buffer state is inserted.  How the extra message
round is wired depends on the transition's shape:

* **Rule A — the decider** (the transition *writes* ``commit`` fan-out,
  i.e. a central-site coordinator): first broadcast ``prepare`` and
  enter the buffer, then broadcast ``commit`` after collecting an
  ``ack`` from every recipient.
* **Rule B — a follower** (the transition *reads* a ``commit``
  message, i.e. a central-site slave): on ``prepare``, reply ``ack``
  and enter the buffer; commit on the eventual ``commit`` message.
* **Rule C — a decentralized peer** (the transition neither reads nor
  writes ``commit``; it commits on the full set of yes votes): on the
  full vote set, broadcast ``prepare`` to every site (including
  itself) and enter the buffer; commit on the full ``prepare`` set.

Applied to the catalog 2PCs, the synthesis reproduces the catalog 3PCs
exactly (experiment F4 asserts structural equality).  Applied to 1PC —
where slaves cast no votes, so no buffer placement can ever create a
committable pre-commit state — the synthesis correctly fails,
reproducing the paper's observation that 1PC is inadequate.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.committable import committable_states
from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.reachability import DEFAULT_BUDGET, build_state_graph
from repro.analysis.synchronicity import check_synchronicity
from repro.errors import NotSynchronousError, SynthesisError
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import Msg, fan_in, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.types import SiteId


def insert_buffer_states(
    spec: ProtocolSpec,
    buffer_name: str = "p",
    prepare_kind: str = "prepare",
    ack_kind: str = "ack",
    budget: Optional[int] = DEFAULT_BUDGET,
    verify: bool = True,
) -> ProtocolSpec:
    """Make a blocking protocol nonblocking by inserting buffer states.

    Args:
        spec: A blocking protocol, synchronous within one transition.
        buffer_name: Name for the inserted buffer states (the paper's
            ``p``).  Uniquified with primes if it collides.
        prepare_kind: Message kind announcing the impending commit.
        ack_kind: Message kind acknowledging a ``prepare`` (rule A/B).
        budget: State-graph budget for the analyses involved.
        verify: Re-run the nonblocking theorem on the result and raise
            if it still blocks (default).  Disable only to inspect the
            raw transform.

    Returns:
        A new, validated :class:`ProtocolSpec` with buffer states.  A
        protocol that is already nonblocking is returned unchanged.

    Raises:
        NotSynchronousError: If the input is not synchronous within one
            state transition — the lemma the method rests on (slide 33)
            only applies to such protocols.
        SynthesisError: If the transformed protocol still blocks (e.g.
            1PC, whose slaves never vote).
    """
    graph = build_state_graph(spec, budget=budget)
    before = check_nonblocking(spec, graph=graph, budget=budget)
    if before.nonblocking:
        return spec

    sync = check_synchronicity(spec, budget=budget)
    if not sync.synchronous_within_one:
        raise NotSynchronousError(
            f"{spec.name!r} is not synchronous within one state transition "
            f"(max lead {sync.max_lead}); the buffer-state method's lemma "
            "(slide 33) does not apply"
        )

    committable = committable_states(graph)
    new_automata: dict[SiteId, SiteAutomaton] = {}
    changed = False
    for site in spec.sites:
        automaton = spec.automaton(site)
        rewritten = _rewrite_automaton(
            spec, automaton, committable, buffer_name, prepare_kind, ack_kind
        )
        if rewritten is not automaton:
            changed = True
        new_automata[site] = rewritten

    if not changed:
        raise SynthesisError(
            f"{spec.name!r} is blocking but no transition into a commit "
            "state has a noncommittable source; buffer insertion does not "
            "apply"
        )

    result = ProtocolSpec(
        name=f"{spec.name} +buffer",
        protocol_class=spec.protocol_class,
        automata=new_automata,
        initial_messages=spec.initial_messages,
        coordinator=spec.coordinator,
    )
    if verify:
        after = check_nonblocking(result, budget=budget)
        if not after.nonblocking:
            details = "; ".join(v.describe() for v in after.violations[:3])
            raise SynthesisError(
                f"buffer insertion did not make {spec.name!r} nonblocking "
                f"(remaining violations: {details}).  This happens when some "
                "site casts no vote — e.g. 1PC slaves — so no pre-commit "
                "state can ever be committable."
            )
    return result


def _rewrite_automaton(
    spec: ProtocolSpec,
    automaton: SiteAutomaton,
    committable: dict[tuple[SiteId, str], bool],
    buffer_name: str,
    prepare_kind: str,
    ack_kind: str,
) -> SiteAutomaton:
    """Rewrite one automaton, returning it unchanged if nothing applies."""
    site = automaton.site
    to_rewrite = [
        t
        for t in automaton.transitions
        if t.target in automaton.commit_states
        and not committable.get((site, t.source), False)
    ]
    if not to_rewrite:
        return automaton

    buffer = _unique_state_name(automaton, buffer_name)
    new_transitions: list[Transition] = []
    for transition in automaton.transitions:
        if transition in to_rewrite:
            new_transitions.extend(
                _split_transition(
                    spec, site, transition, buffer, prepare_kind, ack_kind
                )
            )
        else:
            new_transitions.append(transition)

    return SiteAutomaton(
        site=site,
        role=automaton.role,
        initial=automaton.initial,
        commit_states=automaton.commit_states,
        abort_states=automaton.abort_states,
        transitions=new_transitions,
    )


def _split_transition(
    spec: ProtocolSpec,
    site: SiteId,
    transition: Transition,
    buffer: str,
    prepare_kind: str,
    ack_kind: str,
) -> list[Transition]:
    """Split one commit-entering transition around a buffer state."""
    commit_writes = [m for m in transition.writes if m.kind == "commit"]
    commit_reads = [m for m in transition.reads if m.kind == "commit"]

    if commit_writes:
        # Rule A: the decider.  Writes must be pure commit fan-out.
        extra = [m for m in transition.writes if m.kind != "commit"]
        if extra:
            raise SynthesisError(
                f"site {site}: transition {transition.describe()} mixes "
                f"commit messages with {extra}; rule A cannot split it"
            )
        prepare_writes = tuple(
            Msg(prepare_kind, site, m.dst) for m in transition.writes
        )
        ack_reads = frozenset(
            Msg(ack_kind, m.dst, site) for m in transition.writes
        )
        return [
            Transition(
                source=transition.source,
                target=buffer,
                reads=transition.reads,
                writes=prepare_writes,
                vote=transition.vote,
            ),
            Transition(
                source=buffer,
                target=transition.target,
                reads=ack_reads,
                writes=transition.writes,
            ),
        ]

    if commit_reads:
        # Rule B: a follower.
        prepare_reads = frozenset(
            Msg(prepare_kind, m.src, site) for m in commit_reads
        )
        ack_writes = tuple(Msg(ack_kind, site, m.src) for m in commit_reads)
        return [
            Transition(
                source=transition.source,
                target=buffer,
                reads=prepare_reads,
                writes=ack_writes,
            ),
            Transition(
                source=buffer,
                target=transition.target,
                reads=transition.reads,
                writes=transition.writes,
                vote=transition.vote,
            ),
        ]

    # Rule C: a decentralized peer committing on the full vote set.
    sites = list(spec.sites)
    return [
        Transition(
            source=transition.source,
            target=buffer,
            reads=transition.reads,
            writes=fan_out(prepare_kind, site, sites),
            vote=transition.vote,
        ),
        Transition(
            source=buffer,
            target=transition.target,
            reads=fan_in(prepare_kind, sites, site),
            writes=transition.writes,
        ),
    ]


def _unique_state_name(automaton: SiteAutomaton, base: str) -> str:
    """Return ``base``, primed until it avoids existing state names."""
    name = base
    while name in automaton.states:
        name += "'"
    return name


def specs_structurally_equal(a: ProtocolSpec, b: ProtocolSpec) -> bool:
    """Whether two specs have identical structure.

    Compares sites, coordinator, initial messages, and — per site —
    initial state, commit/abort sets, and the transition set (reads,
    writes, votes).  Names and roles are ignored.  Used by experiment
    F4 to assert that synthesizing buffer states into the 2PCs yields
    exactly the catalog 3PCs.
    """
    if a.sites != b.sites or a.coordinator != b.coordinator:
        return False
    if a.initial_messages != b.initial_messages:
        return False
    for site in a.sites:
        auto_a = a.automaton(site)
        auto_b = b.automaton(site)
        if auto_a.initial != auto_b.initial:
            return False
        if auto_a.commit_states != auto_b.commit_states:
            return False
        if auto_a.abort_states != auto_b.abort_states:
            return False
        if set(auto_a.transitions) != set(auto_b.transitions):
            return False
    return True
