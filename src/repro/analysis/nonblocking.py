"""The fundamental nonblocking theorem, its corollary, and the lemma.

Theorem (slide 29).  A protocol is nonblocking if and only if, at every
participating site, both of the following hold:

1. no local state has both an abort and a commit state in its
   concurrency set;
2. no *noncommittable* state has a commit state in its concurrency set.

Corollary (slide 30).  A commit protocol is nonblocking with respect to
k−1 site failures iff some subset of k sites obeys both conditions.
Because each condition is a per-site property of that site's own local
states, the largest obeying subset is simply the set of all obeying
sites.

Lemma (slide 33).  A protocol *synchronous within one state transition*
is nonblocking iff (1) it contains no local state adjacent to both a
commit and an abort state and (2) no noncommittable state adjacent to a
commit state — adjacency in the local FSA.  The lemma is the engine of
the buffer-state design method in :mod:`repro.analysis.synthesis`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.committable import committable_states
from repro.analysis.concurrency import concurrency_set
from repro.analysis.reachability import (
    DEFAULT_BUDGET,
    ReachableStateGraph,
    build_state_graph,
)
from repro.fsa.spec import ProtocolSpec
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class Violation:
    """One violated theorem condition at one local state.

    Attributes:
        site: The site owning the state.
        state: The offending local state.
        condition: ``1`` or ``2``, matching the theorem's numbering.
        commit_witness: A ``(site, state)`` commit state in the
            concurrency set (present for both conditions).
        abort_witness: A ``(site, state)`` abort state in the
            concurrency set (condition 1 only).
    """

    site: SiteId
    state: str
    condition: int
    commit_witness: tuple[SiteId, str]
    abort_witness: Optional[tuple[SiteId, str]] = None

    def describe(self) -> str:
        """Render the violation as one line of explanation."""
        if self.condition == 1:
            return (
                f"site {self.site} state {self.state!r}: concurrency set "
                f"contains commit state {self.commit_witness[1]!r} (site "
                f"{self.commit_witness[0]}) and abort state "
                f"{self.abort_witness[1]!r} (site {self.abort_witness[0]})"
            )
        return (
            f"site {self.site} state {self.state!r}: noncommittable, yet its "
            f"concurrency set contains commit state {self.commit_witness[1]!r} "
            f"(site {self.commit_witness[0]})"
        )


@dataclasses.dataclass(frozen=True)
class NonblockingReport:
    """Result of checking the fundamental nonblocking theorem.

    Attributes:
        spec_name: Name of the analyzed protocol.
        nonblocking: Whether both conditions hold at every site.
        violations: Every violated condition, ordered by site and state.
        committable: The committable classification used by condition 2.
        obeying_sites: Sites with no violations — the largest subset in
            the sense of the corollary.
    """

    spec_name: str
    nonblocking: bool
    violations: tuple[Violation, ...]
    committable: dict[tuple[SiteId, str], bool]
    obeying_sites: frozenset[SiteId]

    @property
    def tolerated_failures(self) -> int:
        """Resilience per the corollary: failures tolerated without blocking.

        With k obeying sites the protocol is nonblocking with respect to
        k−1 failures (it terminates as long as one obeying site remains
        operational).  A protocol with no obeying sites tolerates none.
        """
        return max(0, len(self.obeying_sites) - 1)

    def violations_at(self, site: SiteId) -> tuple[Violation, ...]:
        """The violations belonging to one site."""
        return tuple(v for v in self.violations if v.site == site)

    def describe(self) -> str:
        """Multi-line human-readable verdict."""
        lines = [
            f"protocol: {self.spec_name}",
            f"nonblocking: {'YES' if self.nonblocking else 'NO'}",
            f"obeying sites: {sorted(self.obeying_sites) or 'none'}",
            f"tolerated failures (corollary): {self.tolerated_failures}",
        ]
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  - {v.describe()}" for v in self.violations)
        return "\n".join(lines)


def check_nonblocking(
    spec: ProtocolSpec,
    graph: Optional[ReachableStateGraph] = None,
    budget: Optional[int] = DEFAULT_BUDGET,
) -> NonblockingReport:
    """Check the fundamental nonblocking theorem for ``spec``.

    Args:
        spec: The protocol to check.
        graph: A pre-built reachable state graph (built fresh if
            omitted).
        budget: Node budget when building the graph.

    Returns:
        A :class:`NonblockingReport` with the verdict, per-state
        violations, and the corollary's resilience count.
    """
    if graph is None:
        graph = build_state_graph(spec, budget=budget)
    committable = committable_states(graph)

    violations: list[Violation] = []
    for site in graph.sites:
        read_only = spec.automaton(site).read_only_states
        for state in sorted(graph.reachable_local_states(site)):
            # A read-only exit state is terminal without an outcome:
            # the site has left the protocol and never needs a
            # decision, so the theorem's conditions — which protect an
            # operational site that still must decide — do not apply.
            # (Either global outcome coexists with ``r``, so condition
            # 1 would otherwise flag it vacuously.)
            if state in read_only:
                continue
            cs = concurrency_set(graph, site, state)
            commit_states = sorted(
                (other, local)
                for (other, local) in cs
                if spec.is_commit_state(other, local)
            )
            abort_states = sorted(
                (other, local)
                for (other, local) in cs
                if spec.is_abort_state(other, local)
            )
            if commit_states and abort_states:
                violations.append(
                    Violation(
                        site=site,
                        state=state,
                        condition=1,
                        commit_witness=commit_states[0],
                        abort_witness=abort_states[0],
                    )
                )
            if commit_states and not committable[(site, state)]:
                violations.append(
                    Violation(
                        site=site,
                        state=state,
                        condition=2,
                        commit_witness=commit_states[0],
                    )
                )

    violating_sites = {v.site for v in violations}
    obeying = frozenset(site for site in graph.sites if site not in violating_sites)
    return NonblockingReport(
        spec_name=spec.name,
        nonblocking=not violations,
        violations=tuple(violations),
        committable=committable,
        obeying_sites=obeying,
    )


@dataclasses.dataclass(frozen=True)
class LemmaViolation:
    """One violated lemma condition (local-FSA adjacency version).

    Attributes:
        site: The site owning the state.
        state: The offending local state.
        condition: ``1`` (adjacent to both commit and abort) or ``2``
            (noncommittable adjacent to commit).
        adjacent_commit: An adjacent commit state.
        adjacent_abort: An adjacent abort state (condition 1 only).
    """

    site: SiteId
    state: str
    condition: int
    adjacent_commit: str
    adjacent_abort: Optional[str] = None

    def describe(self) -> str:
        """Render the violation as one line of explanation."""
        if self.condition == 1:
            return (
                f"site {self.site} state {self.state!r}: adjacent to commit "
                f"state {self.adjacent_commit!r} and abort state "
                f"{self.adjacent_abort!r}"
            )
        return (
            f"site {self.site} state {self.state!r}: noncommittable, yet "
            f"adjacent to commit state {self.adjacent_commit!r}"
        )


def check_lemma(
    spec: ProtocolSpec,
    committable: Optional[dict[tuple[SiteId, str], bool]] = None,
    graph: Optional[ReachableStateGraph] = None,
) -> tuple[LemmaViolation, ...]:
    """Check the adjacency lemma for a synchronous-within-one protocol.

    Condition 2 needs the committable classification, which is a global
    property; pass a precomputed map or let this function build the
    graph itself.

    Returns:
        All lemma violations (empty means the protocol is nonblocking,
        provided it is synchronous within one transition — check that
        separately with :func:`repro.analysis.synchronicity.check_synchronicity`).
    """
    if committable is None:
        if graph is None:
            graph = build_state_graph(spec)
        committable = committable_states(graph)

    violations: list[LemmaViolation] = []
    for site in spec.sites:
        automaton = spec.automaton(site)
        for state in sorted(automaton.states):
            successors = automaton.successors(state)
            commits = sorted(s for s in successors if s in automaton.commit_states)
            aborts = sorted(s for s in successors if s in automaton.abort_states)
            if commits and aborts:
                violations.append(
                    LemmaViolation(
                        site=site,
                        state=state,
                        condition=1,
                        adjacent_commit=commits[0],
                        adjacent_abort=aborts[0],
                    )
                )
            if commits and not committable.get((site, state), False):
                violations.append(
                    LemmaViolation(
                        site=site,
                        state=state,
                        condition=2,
                        adjacent_commit=commits[0],
                    )
                )
    return tuple(violations)
