"""Global-state analysis of commit protocols.

This package mechanizes the analytical machinery of Skeen (1981):

* :mod:`~repro.analysis.global_state` / :mod:`~repro.analysis.reachability`
  — the reachable global state graph: a global state is the vector of
  all local states plus the outstanding messages in the network
  (slide 17), and the graph contains every global state reachable from
  the transaction's initial global state;
* :mod:`~repro.analysis.concurrency` — concurrency sets: the local
  states other sites may occupy concurrently with a given local state
  (slide 19);
* :mod:`~repro.analysis.committable` — committable states: local states
  whose occupancy implies every site voted yes (slide 20);
* :mod:`~repro.analysis.nonblocking` — the fundamental nonblocking
  theorem (slide 29), its corollary on k−1 site failures (slide 30),
  and the adjacency lemma for protocols synchronous within one
  transition (slide 33);
* :mod:`~repro.analysis.synchronicity` — the synchronous-within-one
  property, checked by counting transitions along executions;
* :mod:`~repro.analysis.synthesis` — the paper's design method: buffer
  state insertion that turns the blocking 2PCs into the nonblocking
  3PCs (slide 34).
"""

from repro.analysis.committable import committable_states
from repro.analysis.concurrency import (
    concurrency_labels,
    concurrency_set,
    concurrency_table,
)
from repro.analysis.global_state import GlobalEdge, GlobalState
from repro.analysis.conformance import AuditFinding, audit_run
from repro.analysis.nonblocking import (
    NonblockingReport,
    Violation,
    check_lemma,
    check_nonblocking,
)
from repro.analysis.paths import (
    ExecutionPath,
    enumerate_executions,
    execution_statistics,
)
from repro.analysis.reachability import ReachableStateGraph, build_state_graph
from repro.analysis.synchronicity import SynchronicityReport, check_synchronicity
from repro.analysis.synthesis import insert_buffer_states, specs_structurally_equal

__all__ = [
    "AuditFinding",
    "ExecutionPath",
    "GlobalEdge",
    "GlobalState",
    "NonblockingReport",
    "ReachableStateGraph",
    "SynchronicityReport",
    "Violation",
    "audit_run",
    "build_state_graph",
    "check_lemma",
    "check_nonblocking",
    "check_synchronicity",
    "committable_states",
    "concurrency_labels",
    "concurrency_set",
    "concurrency_table",
    "enumerate_executions",
    "execution_statistics",
    "insert_buffer_states",
    "specs_structurally_equal",
]
