"""Runtime verification: audit executed runs against the formal model.

The analysis layer proves properties of the *spec*; the engine claims
to interpret that spec faithfully.  :func:`audit_run` closes the loop
by re-checking an executed :class:`~repro.runtime.harness.RunResult`
against the automata:

* every site's transition sequence is a valid path of its automaton
  from the initial state (forced moves by termination/recovery are
  exempt from path validity but must respect their own rules);
* a site that logged a vote actually fired a transition carrying that
  vote (unless the vote was written ahead of a crashed transition);
* a logged decision matches the site's final state when one exists;
* no two sites logged conflicting decisions (the atomicity audit).

Property-based suites run the auditor over randomized campaigns, so an
engine bug that deviated from the model would be caught even if the
end-to-end outcome happened to look right.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from repro.fsa.spec import ProtocolSpec
from repro.runtime.harness import RunResult
from repro.types import Outcome, SiteId

#: Parses "q --(reads / writes)--> w [vote yes]" transition descriptions.
_TRANSITION_RE = re.compile(
    r"^(?P<source>\S+) --\(.*\)--> (?P<target>\S+?)"
    r"(?: \[vote (?P<vote>yes|no|ro)\])?$"
)


@dataclasses.dataclass(frozen=True)
class AuditFinding:
    """One conformance violation found by the auditor."""

    site: Optional[SiteId]
    kind: str
    detail: str

    def __str__(self) -> str:
        where = f"site {self.site}" if self.site is not None else "global"
        return f"[{self.kind}] {where}: {self.detail}"


def audit_run(run: RunResult, spec: ProtocolSpec) -> list[AuditFinding]:
    """Audit one executed run against its protocol spec.

    Returns:
        All conformance violations (empty for a faithful execution).
    """
    findings: list[AuditFinding] = []
    findings.extend(_audit_atomicity(run))
    for site in spec.sites:
        findings.extend(_audit_site_path(run, spec, site))
    return findings


def _audit_atomicity(run: RunResult) -> list[AuditFinding]:
    decided = run.decided_outcomes()
    if len(decided) > 1:
        return [
            AuditFinding(
                site=None,
                kind="atomicity",
                detail=f"conflicting outcomes logged: {run.outcomes()!r}",
            )
        ]
    return []


def _site_transition_events(run: RunResult, site: SiteId):
    """The site's engine events in order, as (category, source, target, vote)."""
    events = []
    for entry in run.trace.select(site=site):
        if entry.category == "engine.transition":
            match = _TRANSITION_RE.match(entry.detail)
            if match is None:
                events.append(("unparsed", entry.detail, None, None))
            else:
                events.append(
                    (
                        "transition",
                        match.group("source"),
                        match.group("target"),
                        match.group("vote"),
                    )
                )
        elif entry.category == "engine.forced_state":
            events.append(("forced_state", None, entry.data.get("state"), None))
        elif entry.category == "engine.forced_outcome":
            events.append(("forced_outcome", None, entry.data.get("state"), None))
        elif entry.category == "site.restart":
            events.append(("restart", None, None, None))
    return events


def _audit_site_path(
    run: RunResult, spec: ProtocolSpec, site: SiteId
) -> list[AuditFinding]:
    findings: list[AuditFinding] = []
    automaton = spec.automaton(site)
    valid_steps = {(t.source, t.target) for t in automaton.transitions}
    vote_steps = {
        (t.source, t.target): t.vote.value
        for t in automaton.transitions
        if t.vote is not None
    }

    current = automaton.initial
    saw_vote: Optional[str] = None
    for kind, source, target, vote in _site_transition_events(run, site):
        if kind == "unparsed":
            findings.append(
                AuditFinding(site, "trace", f"unparsable transition {source!r}")
            )
        elif kind == "transition":
            if source != current:
                findings.append(
                    AuditFinding(
                        site,
                        "path",
                        f"fired from {source!r} while tracked state was "
                        f"{current!r}",
                    )
                )
            if (source, target) not in valid_steps:
                findings.append(
                    AuditFinding(
                        site,
                        "path",
                        f"{source!r} -> {target!r} is not a transition of "
                        "the automaton",
                    )
                )
            if vote is not None:
                expected = vote_steps.get((source, target))
                if expected != vote:
                    findings.append(
                        AuditFinding(
                            site,
                            "vote",
                            f"trace claims vote {vote!r} on "
                            f"{source!r}->{target!r}, spec says {expected!r}",
                        )
                    )
                saw_vote = vote
            current = target
        elif kind == "forced_state":
            if target not in automaton.states:
                findings.append(
                    AuditFinding(
                        site, "forced", f"adopted unknown state {target!r}"
                    )
                )
            current = target
        elif kind == "forced_outcome":
            current = target
        elif kind == "restart":
            current = automaton.initial

    report = run.reports.get(site)
    if report is None:
        return findings

    # Decision/state agreement for sites that finished normally.
    if report.outcome.is_final and report.alive and not report.crashed:
        expected_states = (
            automaton.commit_states
            if report.outcome is Outcome.COMMIT
            else automaton.abort_states
        )
        if current not in expected_states:
            findings.append(
                AuditFinding(
                    site,
                    "decision",
                    f"logged {report.outcome.value} but ended in state "
                    f"{current!r}",
                )
            )

    # A recorded vote must match some vote event unless the site
    # crashed mid-transition (vote is forced before sends).
    if report.vote is not None and saw_vote is not None:
        if report.vote.value != saw_vote:
            findings.append(
                AuditFinding(
                    site,
                    "vote",
                    f"DT log vote {report.vote.value!r} differs from fired "
                    f"vote {saw_vote!r}",
                )
            )
    return findings
