"""Execution paths: maximal runs through the reachable state graph.

The graph (slide 17) answers "what states can coexist"; this module
answers "what complete executions exist".  A maximal path from the
initial global state to a terminal state is one failure-free execution
of the protocol — one interleaving of site transitions.  Enumerating
them supports the liveness half of the story the theorem's safety half
leaves implicit:

* every maximal execution ends in a *final* state (all sites decided):
  the protocol cannot wedge without failures;
* every execution's outcome is unanimous (the safety cross-check);
* path counts and lengths quantify the interleaving explosion, and the
  outcome split shows how vote nondeterminism partitions the runs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.analysis.global_state import GlobalState
from repro.analysis.reachability import ReachableStateGraph
from repro.errors import AnalysisError
from repro.metrics.collector import StatSeries
from repro.types import Outcome


@dataclasses.dataclass(frozen=True)
class ExecutionPath:
    """One maximal execution (a root-to-terminal path).

    Attributes:
        states: Visited global states, initial first.
        fired: The (site, transition) pairs fired, in order.
    """

    states: tuple[GlobalState, ...]
    fired: tuple[tuple[int, str], ...]

    @property
    def length(self) -> int:
        """Number of transitions fired."""
        return len(self.fired)

    def outcome(self, graph: ReachableStateGraph) -> Outcome:
        """The unanimous outcome of the path's terminal state.

        Raises:
            AnalysisError: If the terminal state mixes outcomes or is
                not final (a protocol bug this module exists to catch).
        """
        terminal = self.states[-1]
        spec = graph.spec
        outcomes = set()
        for site, local in zip(graph.sites, terminal.locals):
            if spec.is_commit_state(site, local):
                outcomes.add(Outcome.COMMIT)
            elif spec.is_abort_state(site, local):
                outcomes.add(Outcome.ABORT)
            else:
                outcomes.add(Outcome.UNDECIDED)
        if len(outcomes) != 1 or not next(iter(outcomes)).is_final:
            raise AnalysisError(
                f"terminal state {terminal.describe(graph.sites)} is not a "
                "unanimous final state"
            )
        return next(iter(outcomes))


def enumerate_executions(
    graph: ReachableStateGraph,
    limit: Optional[int] = 100_000,
) -> Iterator[ExecutionPath]:
    """Yield every maximal execution path of the graph.

    Depth-first from the initial state; the graph is acyclic (local
    FSAs are acyclic and messages are consumed), so enumeration
    terminates.  The count is exponential in sites — ``limit`` bounds
    it explicitly.

    Raises:
        AnalysisError: When ``limit`` maximal paths have been yielded
            and more remain.
    """
    produced = 0
    # Iterative DFS carrying the path; graphs here are small and
    # acyclic, so recursion depth equals path length — stay iterative
    # anyway for predictability.
    stack: list[tuple[GlobalState, tuple[GlobalState, ...], tuple]] = [
        (graph.initial, (graph.initial,), ())
    ]
    while stack:
        state, states, fired = stack.pop()
        edges = graph.successors(state)
        if not edges:
            produced += 1
            if limit is not None and produced > limit:
                raise AnalysisError(
                    f"more than {limit} maximal executions; raise the limit"
                )
            yield ExecutionPath(states=states, fired=fired)
            continue
        for edge in reversed(edges):
            stack.append(
                (
                    edge.target,
                    states + (edge.target,),
                    fired
                    + (
                        (
                            edge.site,
                            f"{edge.transition.source}->{edge.transition.target}",
                        ),
                    ),
                )
            )


@dataclasses.dataclass
class ExecutionStatistics:
    """Aggregate statistics over every maximal execution."""

    paths: int
    commit_paths: int
    abort_paths: int
    lengths: StatSeries

    @property
    def all_terminate_finally(self) -> bool:
        """True when enumeration completed — every path hit a final
        state (non-final terminals raise during collection)."""
        return self.paths == self.commit_paths + self.abort_paths


def execution_statistics(
    graph: ReachableStateGraph,
    limit: Optional[int] = 100_000,
) -> ExecutionStatistics:
    """Collect outcome and length statistics over all executions.

    Raises:
        AnalysisError: If any execution ends non-final or mixed — the
            liveness/safety failure this analysis exists to expose.
    """
    commit = abort = total = 0
    lengths = StatSeries()
    for path in enumerate_executions(graph, limit=limit):
        total += 1
        lengths.add(float(path.length))
        if path.outcome(graph) is Outcome.COMMIT:
            commit += 1
        else:
            abort += 1
    return ExecutionStatistics(
        paths=total,
        commit_paths=commit,
        abort_paths=abort,
        lengths=lengths,
    )
