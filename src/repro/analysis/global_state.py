"""Global transaction states.

Slide 17: "The global state of a distributed transaction is defined as
a global state vector containing the local states of all FSAs and the
outstanding messages in the network.  The global state defines the
complete processing state of a transaction."

Outstanding messages form a *set*: spec validation
(:func:`repro.fsa.validate.validate_spec`) guarantees no execution can
have two identical messages in flight simultaneously, so nothing is
lost by the set representation.
"""

from __future__ import annotations

import dataclasses

from repro.fsa.automaton import Transition
from repro.fsa.messages import Msg
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class GlobalState:
    """One global transaction state.

    Attributes:
        locals: Local state of each site, indexed by the site's position
            in the sorted site list of the owning spec.
        messages: Messages outstanding in the network.
    """

    locals: tuple[str, ...]
    messages: frozenset[Msg]

    def describe(self, sites: tuple[SiteId, ...]) -> str:
        """Render like the paper: ``(w1, q2) + {yes[2->1]}``."""
        vector = ", ".join(
            f"{state}{site}" for site, state in zip(sites, self.locals)
        )
        if self.messages:
            outstanding = ", ".join(str(m) for m in sorted(self.messages))
            return f"({vector}) + {{{outstanding}}}"
        return f"({vector})"


@dataclasses.dataclass(frozen=True)
class GlobalEdge:
    """One edge of the reachable state graph.

    An edge fires a single site transition: the site reads the
    transition's messages off the network, writes its messages, and
    moves to the next local state.

    Attributes:
        source: Global state before the transition.
        site: The site that moved.
        transition: The local transition that fired.
        target: Global state after the transition.
    """

    source: GlobalState
    site: SiteId
    transition: Transition
    target: GlobalState
