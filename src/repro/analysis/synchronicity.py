"""The synchronous-within-one-state-transition property.

Slide 24: "A protocol is said to be synchronous within one state
transition if one site never leads another by more than one state
transition during the execution of the protocol."

The paper's automata are not leveled (an abort state can be one or two
transitions deep), so the check cannot read transition counts off state
identity.  Instead we enumerate *step-annotated* global states —
``(local states, outstanding messages, per-site transition counts)`` —
and measure the maximum lead ever observed.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Optional

from repro.analysis.global_state import GlobalState
from repro.errors import StateGraphTooLargeError
from repro.fsa.spec import ProtocolSpec
from repro.analysis.reachability import DEFAULT_BUDGET


@dataclasses.dataclass(frozen=True)
class SynchronicityReport:
    """Result of the synchronous-within-one check.

    Attributes:
        spec_name: Name of the analyzed protocol.
        max_lead: The largest difference, over all reachable annotated
            states, between the most- and least-advanced site's
            transition counts.
        synchronous_within_one: Whether ``max_lead <= 1``.
        witness: Step counts of an annotated state realizing
            ``max_lead`` (``None`` when the protocol has no states).
        annotated_states: Number of step-annotated states explored.
    """

    spec_name: str
    max_lead: int
    witness: Optional[tuple[int, ...]]
    annotated_states: int

    @property
    def synchronous_within_one(self) -> bool:
        """Whether the protocol satisfies the slide-24 property."""
        return self.max_lead <= 1


def check_synchronicity(
    spec: ProtocolSpec,
    budget: Optional[int] = DEFAULT_BUDGET,
) -> SynchronicityReport:
    """Measure the maximum inter-site lead of ``spec``.

    Enumerates every reachable combination of global state and per-site
    transition counts, tracking ``max(steps) - min(steps)``.

    Args:
        spec: The protocol to check.
        budget: Maximum annotated states to explore.

    Returns:
        A :class:`SynchronicityReport`.

    Raises:
        StateGraphTooLargeError: When the budget is exceeded.
    """
    sites = tuple(spec.sites)
    initial_state = GlobalState(
        locals=spec.initial_state_vector(),
        messages=spec.initial_messages,
    )
    initial_steps = (0,) * len(sites)

    seen = {(initial_state, initial_steps)}
    queue: deque[tuple[GlobalState, tuple[int, ...]]] = deque(
        [(initial_state, initial_steps)]
    )
    max_lead = 0
    witness: Optional[tuple[int, ...]] = initial_steps

    while queue:
        state, steps = queue.popleft()
        lead = max(steps) - min(steps)
        if lead > max_lead:
            max_lead = lead
            witness = steps
        for position, site in enumerate(sites):
            automaton = spec.automaton(site)
            local = state.locals[position]
            for transition in automaton.out_transitions(local):
                if not transition.reads <= state.messages:
                    continue
                new_locals = list(state.locals)
                new_locals[position] = transition.target
                target = GlobalState(
                    locals=tuple(new_locals),
                    messages=(state.messages - transition.reads)
                    | frozenset(transition.writes),
                )
                new_steps = list(steps)
                new_steps[position] += 1
                annotated = (target, tuple(new_steps))
                if annotated not in seen:
                    if budget is not None and len(seen) >= budget:
                        raise StateGraphTooLargeError(
                            f"{spec.name!r}: synchronicity enumeration exceeds "
                            f"budget of {budget} annotated states"
                        )
                    seen.add(annotated)
                    queue.append(annotated)

    return SynchronicityReport(
        spec_name=spec.name,
        max_lead=max_lead,
        witness=witness,
        annotated_states=len(seen),
    )
