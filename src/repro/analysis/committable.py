"""Committable states.

Slide 20: "A local state is called committable if occupancy of that
state by any site implies that all sites have voted yes on committing
the transaction.  A state that is not committable is called
noncommittable."

Computation
-----------
Per site, :attr:`SiteAutomaton.implies_yes_vote` marks the local states
whose occupancy implies that *this* site voted yes (every local path to
the state traverses a ``Vote.YES`` transition).  A local state ``s`` of
site ``i`` is then committable iff in *every* reachable global state
where ``i`` occupies ``s``, every site occupies a yes-implying local
state.

This is exact for protocols in which a site's vote is reflected in its
local state (true of every protocol in the catalog — voting moves a
site into a distinct state per vote).  For pathological specs where a
state can be reached both with and without a yes vote, the computation
is *sound but conservative*: it may label a committable state
noncommittable, never the reverse, so nonblocking verdicts derived
from it remain trustworthy in the safe direction.
"""

from __future__ import annotations

from repro.analysis.reachability import ReachableStateGraph
from repro.types import SiteId


def committable_states(
    graph: ReachableStateGraph,
) -> dict[tuple[SiteId, str], bool]:
    """Classify every reachable local state as committable or not.

    Args:
        graph: A reachable state graph.

    Returns:
        Mapping ``(site, local_state) -> committable?`` covering every
        local state that occurs in some reachable global state.
    """
    spec = graph.spec
    implies_yes = {
        site: spec.automaton(site).implies_yes_vote for site in graph.sites
    }

    result: dict[tuple[SiteId, str], bool] = {}
    for site in graph.sites:
        for local in graph.reachable_local_states(site):
            committable = True
            for global_state in graph.occupancy(site, local):
                for other, other_local in zip(graph.sites, global_state.locals):
                    if not implies_yes[other].get(other_local, False):
                        committable = False
                        break
                if not committable:
                    break
            result[(site, local)] = committable
    return result


def committable_labels(
    graph: ReachableStateGraph, site: SiteId
) -> frozenset[str]:
    """The committable local states of one site, as labels.

    For the catalog protocols this returns ``{c}`` for the 2PCs and
    ``{p, c}`` for the 3PCs — matching slide 20's observation that "a
    blocking protocol usually has only one committable state, while
    nonblocking protocols always have more than one".
    """
    table = committable_states(graph)
    return frozenset(
        state
        for (owner, state), committable in table.items()
        if owner == site and committable
    )
