"""Reachable global state graph construction.

Slide 17: "The graph of all global states reachable from a
transaction's initial global state is called the reachable state graph
for that transaction."  Slide 19 classifies global states: *final* when
every local state is final, *terminal* when there is no successor, and
*deadlocked* when terminal but not final.

The graph grows exponentially with the number of sites (slide 19), so
the builder enforces an explicit node budget instead of exhausting
memory.  References to global state graphs here assume the absence of
failures (slide 21); failures are analyzed through concurrency sets,
not by enlarging the graph.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.errors import AnalysisError, StateGraphTooLargeError
from repro.analysis.global_state import GlobalEdge, GlobalState
from repro.fsa.spec import ProtocolSpec
from repro.types import SiteId

#: Default node budget for graph enumeration.
DEFAULT_BUDGET = 200_000


class ReachableStateGraph:
    """The reachable global state graph of one protocol spec.

    Built by :func:`build_state_graph`.  Read-only once constructed.

    Attributes:
        spec: The analyzed protocol.
        sites: Sorted site ids (index order of local-state vectors).
        initial: The initial global state.
        adjacency: Successor edges per global state.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        initial: GlobalState,
        adjacency: dict[GlobalState, tuple[GlobalEdge, ...]],
    ) -> None:
        self.spec = spec
        self.sites: tuple[SiteId, ...] = tuple(spec.sites)
        self._site_index = {site: i for i, site in enumerate(self.sites)}
        self.initial = initial
        self.adjacency = adjacency
        self._occupancy: dict[tuple[SiteId, str], set[GlobalState]] = {}
        for state in adjacency:
            for site, local in zip(self.sites, state.locals):
                self._occupancy.setdefault((site, local), set()).add(state)

    # ------------------------------------------------------------------
    # Size and membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.adjacency)

    def __contains__(self, state: GlobalState) -> bool:
        return state in self.adjacency

    @property
    def states(self) -> Iterable[GlobalState]:
        """All reachable global states."""
        return self.adjacency.keys()

    @property
    def edge_count(self) -> int:
        """Total number of edges in the graph."""
        return sum(len(edges) for edges in self.adjacency.values())

    def local_of(self, state: GlobalState, site: SiteId) -> str:
        """The local state of ``site`` within ``state``."""
        return state.locals[self._site_index[site]]

    # ------------------------------------------------------------------
    # Classification (slide 19)
    # ------------------------------------------------------------------

    def successors(self, state: GlobalState) -> tuple[GlobalEdge, ...]:
        """Outgoing edges of a reachable global state."""
        try:
            return self.adjacency[state]
        except KeyError:
            raise AnalysisError(f"state {state} is not in the graph") from None

    def is_final(self, state: GlobalState) -> bool:
        """Whether every site occupies a final (commit/abort) state."""
        return all(
            self.spec.is_final_state(site, local)
            for site, local in zip(self.sites, state.locals)
        )

    def is_terminal(self, state: GlobalState) -> bool:
        """Whether the state has no immediately reachable successor."""
        return not self.adjacency[state]

    def is_deadlocked(self, state: GlobalState) -> bool:
        """Terminal but not final — the protocol wedged without failures."""
        return self.is_terminal(state) and not self.is_final(state)

    def is_inconsistent(self, state: GlobalState) -> bool:
        """Whether the state contains both a commit and an abort state.

        A protocol preserving transaction atomicity can have no
        inconsistent reachable global state (slide 17).
        """
        saw_commit = saw_abort = False
        for site, local in zip(self.sites, state.locals):
            if self.spec.is_commit_state(site, local):
                saw_commit = True
            elif self.spec.is_abort_state(site, local):
                saw_abort = True
        return saw_commit and saw_abort

    def final_states(self) -> list[GlobalState]:
        """All final global states."""
        return [state for state in self.adjacency if self.is_final(state)]

    def terminal_states(self) -> list[GlobalState]:
        """All terminal global states."""
        return [state for state in self.adjacency if self.is_terminal(state)]

    def deadlocked_states(self) -> list[GlobalState]:
        """All deadlocked global states (empty for correct protocols)."""
        return [state for state in self.adjacency if self.is_deadlocked(state)]

    def inconsistent_states(self) -> list[GlobalState]:
        """All inconsistent global states (empty for correct protocols)."""
        return [state for state in self.adjacency if self.is_inconsistent(state)]

    # ------------------------------------------------------------------
    # Occupancy queries (the substrate of concurrency sets)
    # ------------------------------------------------------------------

    def occupancy(self, site: SiteId, local: str) -> frozenset[GlobalState]:
        """All reachable global states in which ``site`` occupies ``local``."""
        return frozenset(self._occupancy.get((site, local), frozenset()))

    def reachable_local_states(self, site: SiteId) -> frozenset[str]:
        """Local states of ``site`` that occur in some reachable global state."""
        return frozenset(
            local for (s, local) in self._occupancy if s == site
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_dot(self) -> str:
        """Render the graph as Graphviz DOT (reproducing slide 18)."""
        index = {state: i for i, state in enumerate(self.adjacency)}
        lines = ["digraph reachable {", "  rankdir=TB;"]
        for state, i in index.items():
            label = state.describe(self.sites).replace('"', "'")
            shape = "box" if self.is_final(state) else "ellipse"
            lines.append(f'  n{i} [label="{label}", shape={shape}];')
        for state, edges in self.adjacency.items():
            for edge in edges:
                lines.append(
                    f"  n{index[edge.source]} -> n{index[edge.target]} "
                    f'[label="site {edge.site}: {edge.transition.source}->'
                    f'{edge.transition.target}"];'
                )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReachableStateGraph({self.spec.name!r}, states={len(self)}, "
            f"edges={self.edge_count})"
        )


def build_state_graph(
    spec: ProtocolSpec,
    budget: Optional[int] = DEFAULT_BUDGET,
) -> ReachableStateGraph:
    """Enumerate the reachable global state graph of ``spec``.

    Breadth-first from the initial global state.  Each edge fires one
    site transition whose read set is fully outstanding; the target
    state removes the reads and adds the writes.

    Args:
        spec: A validated protocol spec.
        budget: Maximum number of distinct global states to enumerate;
            ``None`` disables the limit.

    Returns:
        The complete reachable state graph.

    Raises:
        StateGraphTooLargeError: When the budget is exceeded.
        AnalysisError: If an execution would put a duplicate message in
            flight (cannot happen for validated specs; kept as an
            internal consistency check).
    """
    sites = tuple(spec.sites)
    initial = GlobalState(
        locals=spec.initial_state_vector(),
        messages=spec.initial_messages,
    )
    adjacency: dict[GlobalState, tuple[GlobalEdge, ...]] = {}
    queue: deque[GlobalState] = deque([initial])
    seen = {initial}

    while queue:
        state = queue.popleft()
        edges = []
        for position, site in enumerate(sites):
            automaton = spec.automaton(site)
            local = state.locals[position]
            for transition in automaton.out_transitions(local):
                if not transition.reads <= state.messages:
                    continue
                remaining = state.messages - transition.reads
                for msg in transition.writes:
                    if msg in remaining:
                        raise AnalysisError(
                            f"{spec.name!r}: firing {transition.describe()} at "
                            f"site {site} would duplicate in-flight message {msg}"
                        )
                new_locals = list(state.locals)
                new_locals[position] = transition.target
                target = GlobalState(
                    locals=tuple(new_locals),
                    messages=remaining | frozenset(transition.writes),
                )
                edges.append(
                    GlobalEdge(
                        source=state, site=site, transition=transition, target=target
                    )
                )
                if target not in seen:
                    if budget is not None and len(seen) >= budget:
                        raise StateGraphTooLargeError(
                            f"{spec.name!r}: reachable state graph exceeds "
                            f"budget of {budget} states"
                        )
                    seen.add(target)
                    queue.append(target)
        adjacency[state] = tuple(edges)

    return ReachableStateGraph(spec=spec, initial=initial, adjacency=adjacency)
