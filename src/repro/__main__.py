"""``python -m repro`` — the same entry point as the ``repro`` script.

The live cluster harness spawns its site processes this way so it
works from a source checkout without an installed console script.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
