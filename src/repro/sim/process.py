"""Base class for simulated processes.

A :class:`Process` is a named actor owning a reference to the
simulator.  It offers timer helpers (``set_timer`` / cancellation) and
a crash/restart lifecycle that the failure injector drives.  Site-level
actors — commit-protocol participants, resource managers, election
participants — all extend this class.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ProcessError
from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator
from repro.types import SimTime


class Process:
    """A named simulated actor with timers and a crash lifecycle.

    Args:
        sim: The simulator this process schedules work on.
        name: Unique human-readable name used in traces.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._alive = True
        self._timers: dict[str, EventHandle] = {}

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the process is currently operational."""
        return self._alive

    def crash(self) -> None:
        """Mark the process as crashed and cancel all its timers.

        Subclasses override :meth:`on_crash` to lose volatile state;
        this base method handles the generic bookkeeping.  Crashing a
        crashed process is a no-op.
        """
        if not self._alive:
            return
        self._alive = False
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.on_crash()

    def restart(self) -> None:
        """Bring a crashed process back up.

        Raises:
            ProcessError: If the process is already alive.
        """
        if self._alive:
            raise ProcessError(f"process {self.name!r} is already alive")
        self._alive = True
        self.on_restart()

    def on_crash(self) -> None:
        """Hook invoked when the process crashes.  Default: nothing."""

    def on_restart(self) -> None:
        """Hook invoked when the process restarts.  Default: nothing."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def set_timer(
        self,
        key: str,
        delay: SimTime,
        callback: Callable[[], None],
    ) -> EventHandle:
        """Arm (or re-arm) the named timer.

        The callback only fires if the process is still alive when the
        timer expires; a timer armed under the same key replaces the
        previous one.  Timer callbacks automatically un-register their
        key before running, so re-arming from inside a callback works.
        """
        self.cancel_timer(key)

        def fire() -> None:
            current = self._timers.get(key)
            if current is not None and current is handle:
                del self._timers[key]
            if self._alive:
                callback()

        handle = self.sim.schedule(delay, fire, label=f"{self.name}:{key}")
        self._timers[key] = handle
        return handle

    def cancel_timer(self, key: str) -> bool:
        """Cancel the named timer if armed.  Returns whether it existed."""
        handle = self._timers.pop(key, None)
        if handle is None:
            return False
        handle.cancel()
        return True

    def timer_armed(self, key: str) -> bool:
        """Whether a timer with this key is currently pending."""
        handle = self._timers.get(key)
        return handle is not None and not handle.cancelled

    def active_timers(self) -> list[str]:
        """Names of all currently armed timers (sorted for determinism)."""
        return sorted(
            key for key, handle in self._timers.items() if not handle.cancelled
        )

    # ------------------------------------------------------------------
    # Tracing convenience
    # ------------------------------------------------------------------

    def now(self) -> SimTime:
        """Current virtual time (convenience for phase instrumentation)."""
        return self.sim.now

    def trace(
        self,
        category: str,
        detail: str,
        site: Optional[int] = None,
        **data: object,
    ) -> None:
        """Record a trace entry stamped with the current virtual time."""
        self.sim.trace.record(self.sim.now, category, detail, site=site, **data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self._alive else "down"
        return f"{type(self).__name__}({self.name!r}, {status})"
