"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the event heap.  All other
substrates — the network, the failure injector, the commit-protocol
engine, the database — schedule work through it.  The simulator is
single-threaded and deterministic; see :mod:`repro.sim` for the
determinism contract.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import ClockError, SchedulerChoiceError
from repro.sim.events import Event, EventHandle
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceLog
from repro.types import SimTime

#: A schedule chooser: given the non-cancelled events tied at the
#: earliest virtual time (in scheduling order), return the index of the
#: one to fire next.  ``None`` (the default) keeps FIFO order among
#: ties, which is the library's historical deterministic behaviour.
EventChooser = Callable[[list[Event]], int]


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator(seed=42)
        sim.schedule(1.0, lambda: print("fires at t=1"))
        sim.run()

    Args:
        seed: Root seed for all random streams used in the simulation.
        trace: Optional pre-existing trace log to append to; a fresh one
            is created when omitted.
        chooser: Optional tie-break hook over same-time events — the
            choice point the schedule explorer drives (see
            :mod:`repro.explore`).  Events at *different* times always
            fire in time order; only simultaneity is up for grabs, so a
            chooser can never violate clock monotonicity.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[TraceLog] = None,
        chooser: Optional[EventChooser] = None,
    ) -> None:
        self._now: SimTime = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._pending = 0
        self._events_fired = 0
        self._last_event_time: SimTime = 0.0
        self._running = False
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else TraceLog()
        self.chooser = chooser

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events that have fired so far (cancelled excluded)."""
        return self._events_fired

    @property
    def last_event_time(self) -> SimTime:
        """Virtual time of the most recently fired event.

        Unlike :attr:`now` — which a ``run(until=...)`` deadline can
        advance past the final event — this reflects when the
        simulation actually went quiet, so it is the natural
        "completion time" of a run.
        """
        return self._last_event_time

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events still queued.

        O(1): an exact counter maintained on schedule, cancel, and
        fire, so hot paths can consult it without scanning the heap
        (cancelled events linger there until popped — lazy deletion).
        """
        return self._pending

    def _note_cancel(self) -> None:
        """Bookkeeping hook invoked by :class:`EventHandle.cancel`."""
        self._pending -= 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: SimTime,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Args:
            delay: Nonnegative offset from the current virtual time.
            callback: Zero-argument callable to invoke.
            label: Description recorded on the event for tracing.

        Returns:
            A handle that can cancel the event before it fires.

        Raises:
            ClockError: If ``delay`` is negative.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule event {delay} in the past")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        time: SimTime,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire at absolute virtual time ``time``.

        Raises:
            ClockError: If ``time`` is before the current virtual time.
        """
        if time < self._now:
            raise ClockError(
                f"cannot schedule event at t={time} before current t={self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, on_cancel=self._note_cancel)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _skim_cancelled(self) -> None:
        """Drop cancelled events from the top of the heap (lazy deletion)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def _pop_next(self) -> Optional[Event]:
        """Pop the next event to fire, consulting the chooser on ties.

        Without a chooser this is a plain heap pop (FIFO among
        same-time events by scheduling sequence).  With one, every
        non-cancelled event tied at the earliest time is gathered in
        scheduling order and the chooser picks which fires; the rest
        are pushed back untouched.
        """
        while True:
            self._skim_cancelled()
            if not self._heap:
                return None
            if self.chooser is None:
                return heapq.heappop(self._heap)
            tie_time = self._heap[0].time
            ready: list[Event] = []
            while self._heap and self._heap[0].time == tie_time:
                event = heapq.heappop(self._heap)
                if not event.cancelled:
                    ready.append(event)
            if not ready:
                continue
            if len(ready) == 1:
                return ready[0]
            index = self.chooser(ready)
            if not 0 <= index < len(ready):
                raise SchedulerChoiceError(
                    f"chooser returned index {index} for {len(ready)} "
                    "ready events"
                )
            chosen = ready.pop(index)
            for event in ready:
                heapq.heappush(self._heap, event)
            return chosen

    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue is empty.
        """
        event = self._pop_next()
        if event is None:
            return False
        self._fire(event)
        return True

    def _fire(self, event: Event) -> None:
        event.fired = True
        self._pending -= 1
        self._now = event.time
        self._last_event_time = event.time
        self._events_fired += 1
        event.callback()

    def run(
        self,
        until: Optional[SimTime] = None,
        max_events: Optional[int] = None,
    ) -> SimTime:
        """Run events until quiescence, a deadline, or an event budget.

        Args:
            until: Stop once the next event would fire strictly after
                this time.  The clock is advanced to ``until`` when the
                deadline is the binding constraint, so follow-up
                scheduling sees consistent time.
            max_events: Stop after firing this many events (a safety
                budget for property tests over adversarial schedules).

        Returns:
            The virtual time at which the run stopped.
        """
        fired = 0
        self._running = True
        try:
            while True:
                self._skim_cancelled()
                if not self._heap:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and self._heap[0].time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = self._pop_next()
                if event is None:  # pragma: no cover - heap emptied above
                    continue
                fired += 1
                self._fire(event)
        finally:
            self._running = False
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(t={self._now:.6f}, pending={self.pending_events}, "
            f"fired={self._events_fired})"
        )
