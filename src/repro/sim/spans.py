"""Causal message spans reconstructed from a trace.

The network stamps every ``net.send`` with a network-unique ``msg_id``
and repeats it on the matching terminal event (``net.deliver``,
``net.drop``, or ``net.partition_drop``), so a send and its outcome
form a linkable *span*.  :class:`SpanIndex` walks a
:class:`~repro.sim.tracing.TraceLog` once and pairs them up, yielding
per-message latency and per-site causal order — the raw material for
the message-delay accounting style of analysis (Gray & Lamport's
*Consensus on Transaction Commit* evaluates commit protocols exactly
this way).

Spans survive partial traces: a bounded ring log may have evicted the
``net.send`` of an old message, in which case the terminal entry's
``sent_at`` field still lets the span report its latency.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sim.tracing import TraceEntry, TraceLog
from repro.types import SimTime, SiteId

#: Terminal categories a span can end with, mapped to its status.
_TERMINAL = {
    "net.deliver": "delivered",
    "net.drop": "dropped",
    "net.partition_drop": "partition_drop",
}


@dataclasses.dataclass
class MessageSpan:
    """One message's lifetime: send → deliver/drop, or still in flight.

    Attributes:
        msg_id: Network-unique id assigned at send time.
        src: Sending site (``None`` if the send entry was evicted and
            the terminal entry predates src/dst stamping).
        dst: Destination site.
        sent_at: Virtual send time.
        ended_at: Virtual time of the terminal event, or ``None`` while
            in flight.
        status: ``"delivered"``, ``"dropped"``, ``"partition_drop"``,
            or ``"inflight"``.
        send_entry: The ``net.send`` trace entry, if present.
        end_entry: The terminal trace entry, if present.
    """

    msg_id: int
    src: Optional[SiteId] = None
    dst: Optional[SiteId] = None
    sent_at: Optional[SimTime] = None
    ended_at: Optional[SimTime] = None
    status: str = "inflight"
    send_entry: Optional[TraceEntry] = None
    end_entry: Optional[TraceEntry] = None

    @property
    def latency(self) -> Optional[SimTime]:
        """Send-to-terminal transit time, or ``None`` if unknown."""
        if self.sent_at is None or self.ended_at is None:
            return None
        return self.ended_at - self.sent_at

    @property
    def orphan(self) -> bool:
        """A terminal event with no matching ``net.send`` anywhere.

        In a single-process trace this means the ring log evicted the
        send; in a *stitched* cluster trace it means a whole site's
        send is missing — lost instrumentation, a truncated trace
        file, or a stitching bug — which is why the stitcher reports
        orphans explicitly.
        """
        return self.send_entry is None and self.end_entry is not None

    @property
    def drop_reason(self) -> Optional[str]:
        """Why a dropped span was dropped (``reason`` on the terminal).

        The live transport closes spans it refuses to deliver — e.g.
        ``"stale_incarnation"`` for commit traffic addressed to a dead
        boot epoch — so a deliberate drop is a *closed* span with a
        reason, never an orphan or a forever-inflight mystery.
        """
        if self.end_entry is None or self.status == "delivered":
            return None
        reason = self.end_entry.data.get("reason")
        return str(reason) if reason is not None else None

    def describe(self) -> str:
        """One-line summary of the span."""
        src = "?" if self.src is None else self.src
        dst = "?" if self.dst is None else self.dst
        latency = self.latency
        tail = f"latency={latency:g}" if latency is not None else "latency=?"
        return f"span #{self.msg_id} {src}->{dst} [{self.status}] {tail}"


class SpanIndex:
    """All message spans of one trace, queryable by id, site, and status."""

    def __init__(self, spans: dict[int, MessageSpan]) -> None:
        self._spans = spans

    @classmethod
    def from_trace(cls, trace: TraceLog) -> "SpanIndex":
        """Pair ``net.send`` entries with their terminal events."""
        spans: dict[int, MessageSpan] = {}
        for entry in trace:
            msg_id = entry.data.get("msg_id")
            if msg_id is None:
                continue
            if entry.category == "net.send":
                span = spans.setdefault(msg_id, MessageSpan(msg_id=msg_id))
                span.send_entry = entry
                span.sent_at = entry.time
                span.src = entry.data.get("src", entry.site)
                span.dst = entry.data.get("dst", span.dst)
            elif entry.category in _TERMINAL:
                span = spans.setdefault(msg_id, MessageSpan(msg_id=msg_id))
                span.end_entry = entry
                span.ended_at = entry.time
                span.status = _TERMINAL[entry.category]
                if span.src is None:
                    span.src = entry.data.get("src")
                if span.dst is None:
                    span.dst = entry.data.get("dst", entry.site)
                if span.sent_at is None:
                    sent_at = entry.data.get("sent_at")
                    span.sent_at = float(sent_at) if sent_at is not None else None
        return cls(spans)

    def __len__(self) -> int:
        return len(self._spans)

    def span(self, msg_id: int) -> Optional[MessageSpan]:
        """The span with this message id, or ``None``."""
        return self._spans.get(msg_id)

    def all(self) -> list[MessageSpan]:
        """Every span, ordered by message id."""
        return [self._spans[key] for key in sorted(self._spans)]

    def with_status(self, status: str) -> list[MessageSpan]:
        """Spans with the given status, ordered by message id."""
        return [span for span in self.all() if span.status == status]

    def delivered(self) -> list[MessageSpan]:
        """Spans that completed delivery."""
        return self.with_status("delivered")

    def dropped(self) -> list[MessageSpan]:
        """Spans lost to a down destination or a partition."""
        return [
            span
            for span in self.all()
            if span.status in ("dropped", "partition_drop")
        ]

    def inflight(self) -> list[MessageSpan]:
        """Spans with a send but no terminal event (run ended first)."""
        return self.with_status("inflight")

    def orphans(self) -> list[MessageSpan]:
        """Terminal events whose ``net.send`` is missing, by message id."""
        return [span for span in self.all() if span.orphan]

    def latencies(self) -> list[float]:
        """Transit times of all delivered spans, in message-id order."""
        return [
            span.latency
            for span in self.delivered()
            if span.latency is not None
        ]

    def site_order(self, site: SiteId) -> list[tuple[SimTime, str, int]]:
        """The causal order of message events observed at one site.

        Returns ``(time, kind, msg_id)`` tuples — ``kind`` is ``"send"``
        for transmissions originated by the site and ``"recv"`` for
        deliveries to it — sorted by time (ties broken by msg_id, which
        is assignment order and therefore causal at the sender).
        """
        events: list[tuple[SimTime, str, int]] = []
        for span in self.all():
            if span.src == site and span.sent_at is not None:
                events.append((span.sent_at, "send", span.msg_id))
            if span.dst == site and span.status == "delivered":
                events.append((span.ended_at, "recv", span.msg_id))
        events.sort(key=lambda event: (event[0], event[2]))
        return events
