"""Structured trace log for simulations.

Every interesting occurrence in a run — message send/delivery, state
transition, crash, recovery, decision — is appended to a
:class:`TraceLog` as a :class:`TraceEntry`.  Tests audit traces (for
example, the atomicity audit asserts no trace contains both a commit
and an abort decision for one transaction), and examples print them as
a readable timeline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterator, Optional

from repro.types import SimTime


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    """One timestamped occurrence in a simulation.

    Attributes:
        time: Virtual time of the occurrence.
        category: Machine-matchable kind, e.g. ``"net.deliver"``,
            ``"engine.transition"``, ``"site.crash"``.
        site: Site the entry concerns, or ``None`` for global events.
        detail: Free-form human-readable description.
        data: Structured payload for programmatic audits.
    """

    time: SimTime
    category: str
    site: Optional[int]
    detail: str
    data: dict[str, Any] = dataclasses.field(default_factory=dict)

    def format(self) -> str:
        """Render the entry as one timeline line."""
        where = f"site {self.site}" if self.site is not None else "-"
        return f"[{self.time:9.4f}] {self.category:<20} {where:<8} {self.detail}"


class TraceLog:
    """An append-only sequence of :class:`TraceEntry` with query helpers."""

    def __init__(self) -> None:
        self._entries: list[TraceEntry] = []

    def record(
        self,
        time: SimTime,
        category: str,
        detail: str,
        site: Optional[int] = None,
        **data: Any,
    ) -> TraceEntry:
        """Append an entry and return it."""
        entry = TraceEntry(
            time=time, category=category, site=site, detail=detail, data=data
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    @property
    def entries(self) -> tuple[TraceEntry, ...]:
        """An immutable snapshot of all entries so far."""
        return tuple(self._entries)

    def select(
        self,
        category: Optional[str] = None,
        site: Optional[int] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> list[TraceEntry]:
        """Return entries matching all the given filters.

        ``category`` matches exact categories or prefixes ending in a
        dot (``"net."`` matches ``"net.send"`` and ``"net.deliver"``).
        """
        result = []
        for entry in self._entries:
            if category is not None:
                if category.endswith("."):
                    if not entry.category.startswith(category):
                        continue
                elif entry.category != category:
                    continue
            if site is not None and entry.site != site:
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def count(self, category: str) -> int:
        """Number of entries with exactly this category."""
        return sum(1 for entry in self._entries if entry.category == category)

    def format_timeline(self, limit: Optional[int] = None) -> str:
        """Render the whole trace (or its first ``limit`` lines)."""
        entries = self._entries if limit is None else self._entries[:limit]
        return "\n".join(entry.format() for entry in entries)
