"""Structured trace log for simulations.

Every interesting occurrence in a run — message send/delivery, state
transition, crash, recovery, decision — is appended to a
:class:`TraceLog` as a :class:`TraceEntry`.  Tests audit traces (for
example, the atomicity audit asserts no trace contains both a commit
and an abort decision for one transaction), and examples print them as
a readable timeline.

Traces are also the substrate of the observability layer (see
``docs/OBSERVABILITY.md``): they export to JSON Lines with a
deterministic field order (:meth:`TraceLog.to_jsonl` /
:meth:`TraceLog.from_jsonl`), message sends and deliveries carry a
shared ``msg_id`` so :class:`repro.sim.spans.SpanIndex` can reconstruct
causal spans, and long-running workloads can bound trace memory with
``max_entries`` (ring or drop overflow policy, with a ``dropped``
counter so truncation is never silent).
"""

from __future__ import annotations

import collections
import dataclasses
import json
from typing import Any, Callable, Iterator, Optional, Union

from repro.types import SimTime

#: Overflow policies for bounded logs: ``"ring"`` evicts the oldest
#: entry to make room (keeps the newest window), ``"drop"`` discards
#: the incoming entry (keeps the oldest prefix).
OVERFLOW_POLICIES = ("ring", "drop")

#: Field order of one exported JSONL record.  Fixed so exports are
#: byte-stable across runs and re-imports (round-trip identity).
_JSONL_FIELDS = ("time", "category", "site", "detail", "data")


def _json_safe(value: Any) -> Any:
    """Coerce a trace payload value to a JSON-representable one.

    Scalars pass through; containers recurse; anything else (enums,
    dataclasses, envelopes) becomes its ``str()`` — traces are
    observability data, not a wire format for live objects.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(val) for key, val in value.items()}
    return str(value)


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    """One timestamped occurrence in a simulation.

    Attributes:
        time: Virtual time of the occurrence.
        category: Machine-matchable kind, e.g. ``"net.deliver"``,
            ``"engine.transition"``, ``"site.crash"``.
        site: Site the entry concerns, or ``None`` for global events.
        detail: Free-form human-readable description.
        data: Structured payload for programmatic audits.
    """

    time: SimTime
    category: str
    site: Optional[int]
    detail: str
    data: dict[str, Any] = dataclasses.field(default_factory=dict)

    def format(self) -> str:
        """Render the entry as one timeline line."""
        where = f"site {self.site}" if self.site is not None else "-"
        return f"[{self.time:9.4f}] {self.category:<20} {where:<8} {self.detail}"

    def to_json(self) -> str:
        """Serialize as one canonical JSON line (no trailing newline).

        Field order is fixed (:data:`_JSONL_FIELDS`) and ``data`` keys
        are sorted, so serialization is deterministic: re-exporting an
        imported entry reproduces the original bytes.
        """
        record = {
            "time": float(self.time),
            "category": self.category,
            "site": self.site,
            "detail": self.detail,
            "data": {
                key: _json_safe(value)
                for key, value in sorted(self.data.items())
            },
        }
        return json.dumps(record, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse one JSONL record produced by :meth:`to_json`."""
        record = json.loads(line)
        return cls(
            time=float(record["time"]),
            category=record["category"],
            site=record["site"],
            detail=record["detail"],
            data=dict(record.get("data", {})),
        )


class TraceLog:
    """An append-only sequence of :class:`TraceEntry` with query helpers.

    Args:
        max_entries: Optional bound on retained entries.  ``None``
            (default) keeps everything.
        overflow: What to do when the bound is hit — see
            :data:`OVERFLOW_POLICIES`.  Overflowed entries increment
            :attr:`dropped` so truncation is observable.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        overflow: str = "ring",
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        self.max_entries = max_entries
        self.overflow = overflow
        #: Entries lost to the bound (evicted or discarded).
        self.dropped = 0
        #: Unparseable lines skipped by a lenient import (see
        #: :meth:`from_jsonl`); always 0 for strict imports.
        self.malformed = 0
        self._entries: Union[list[TraceEntry], collections.deque[TraceEntry]]
        if max_entries is not None and overflow == "ring":
            self._entries = collections.deque(maxlen=max_entries)
        else:
            self._entries = []

    def record(
        self,
        time: SimTime,
        category: str,
        detail: str,
        site: Optional[int] = None,
        **data: Any,
    ) -> TraceEntry:
        """Append an entry and return it.

        When the log is bounded, the entry may displace the oldest one
        (``ring``) or be discarded immediately (``drop``); either way
        :attr:`dropped` counts the loss and the entry is still returned
        to the caller.
        """
        entry = TraceEntry(
            time=time, category=category, site=site, detail=detail, data=data
        )
        self.append(entry)
        return entry

    def append(self, entry: TraceEntry) -> None:
        """Append a pre-built entry, honouring the overflow policy."""
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            self.dropped += 1
            if self.overflow == "drop":
                return
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    @property
    def entries(self) -> tuple[TraceEntry, ...]:
        """An immutable snapshot of all entries so far."""
        return tuple(self._entries)

    def select(
        self,
        category: Optional[str] = None,
        site: Optional[int] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> list[TraceEntry]:
        """Return entries matching all the given filters.

        ``category`` matches exact categories or prefixes ending in a
        dot (``"net."`` matches ``"net.send"`` and ``"net.deliver"``).
        """
        result = []
        for entry in self._entries:
            if category is not None:
                if category.endswith("."):
                    if not entry.category.startswith(category):
                        continue
                elif entry.category != category:
                    continue
            if site is not None and entry.site != site:
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def count(self, category: str) -> int:
        """Number of entries with exactly this category."""
        return sum(1 for entry in self._entries if entry.category == category)

    def format_timeline(self, limit: Optional[int] = None) -> str:
        """Render the whole trace (or its first ``limit`` lines)."""
        entries = self.entries if limit is None else self.entries[:limit]
        return "\n".join(entry.format() for entry in entries)

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the whole log as JSON Lines (one entry per line).

        The encoding is canonical — fixed field order, sorted ``data``
        keys, compact separators — so ``to_jsonl`` after ``from_jsonl``
        reproduces the input byte-for-byte.
        """
        return "".join(entry.to_json() + "\n" for entry in self._entries)

    @classmethod
    def from_jsonl(cls, text: str, lenient: bool = False) -> "TraceLog":
        """Rebuild a log from :meth:`to_jsonl` output (blank lines skipped).

        With ``lenient=True``, lines that fail to parse are *skipped*
        and counted in :attr:`malformed` instead of raising.  Live
        sites block-buffer their trace files and a ``kill -9`` can
        tear the final line (or, after a restart appends to the same
        file, a line mid-stream) — advisory data should degrade, not
        abort the analysis.  The strict default preserves the
        byte-identical round-trip contract.
        """
        log = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            if lenient:
                try:
                    entry = TraceEntry.from_json(line)
                except (ValueError, KeyError, TypeError):
                    log.malformed += 1
                    continue
                log.append(entry)
            else:
                log.append(TraceEntry.from_json(line))
        return log

    def save(self, path: str) -> int:
        """Write the log to ``path`` as JSONL; returns the entry count."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self._entries)

    @classmethod
    def load(cls, path: str, lenient: bool = False) -> "TraceLog":
        """Read a JSONL trace file written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_jsonl(handle.read(), lenient=lenient)
