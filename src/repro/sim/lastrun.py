"""Best-effort registry of recent simulation identities.

Simulation failures are only reproducible if the failing test's report
names the inputs that drove the run — the RNG seed and, for explored
schedules, the schedule hash.  Tests rarely print these themselves, so
the harness notes every run it starts here, and the pytest hook in
``tests/conftest.py`` drains the registry into the failure report.

The registry is deliberately tiny and lossy: a bounded deque of plain
dicts, cleared at the start of each test.  It is observability for
humans, not program state — nothing in the library reads it back.
"""

from __future__ import annotations

import collections
from typing import Any

#: How many recent runs to retain; a single test rarely starts more.
_CAPACITY = 16

_RECENT: collections.deque[dict[str, Any]] = collections.deque(maxlen=_CAPACITY)


def note(kind: str, **fields: Any) -> None:
    """Record that a simulation-ish thing just started.

    Args:
        kind: What ran (``"commit_run"``, ``"explore_schedule"``, ...).
        fields: Whatever identifies the run (seed, protocol, hash...).
    """
    _RECENT.append({"kind": kind, **fields})


def recent() -> list[dict[str, Any]]:
    """The retained notes, oldest first."""
    return list(_RECENT)


def clear() -> None:
    """Forget everything (called by the test harness per test)."""
    _RECENT.clear()


def describe() -> str:
    """Render the retained notes as one line each (for failure reports)."""
    lines = []
    for entry in _RECENT:
        kind = entry["kind"]
        rest = " ".join(
            f"{key}={value}" for key, value in entry.items() if key != "kind"
        )
        lines.append(f"{kind}: {rest}")
    return "\n".join(lines)
