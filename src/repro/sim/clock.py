"""The clock seam shared by the simulator and the live runtime.

The protocol controllers (termination, recovery) and the failure
detector only need two powers from time: *read* it (``now``) and
*schedule* a callback after a delay (``call_later``).  :class:`Clock`
names exactly that interface, so the same protocol logic runs over

* **virtual time** — :class:`SimClock`, a thin adapter over the
  discrete-event :class:`~repro.sim.simulator.Simulator`; and
* **wall-clock time** — :class:`repro.live.clock.TimeoutClock`, backed
  by ``asyncio`` and ``time.monotonic`` in the live TCP runtime.

Neither side imports the other: the simulator stays dependency-free and
the live runtime never touches the event queue.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.sim.simulator import Simulator
from repro.types import SimTime


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable handle for one scheduled callback."""

    @property
    def cancelled(self) -> bool:
        """Whether the callback was cancelled before firing."""
        ...  # pragma: no cover - protocol definition

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        ...  # pragma: no cover - protocol definition


@runtime_checkable
class Clock(Protocol):
    """Anything that can tell time and schedule delayed callbacks.

    Implementations must guarantee that ``now()`` is monotonically
    nondecreasing and that a callback scheduled with delay ``d`` runs
    no earlier than ``now() + d`` (virtual or wall, per backend).
    """

    def now(self) -> SimTime:
        """The current time in this clock's units (seconds)."""
        ...  # pragma: no cover - protocol definition

    def call_later(
        self, delay: SimTime, callback: Callable[[], None], label: str = ""
    ) -> TimerHandle:
        """Schedule ``callback`` to run after ``delay``."""
        ...  # pragma: no cover - protocol definition


class SimClock:
    """Adapt a :class:`~repro.sim.simulator.Simulator` to :class:`Clock`.

    The simulator already exposes ``now`` (as a property) and
    ``schedule`` (returning an :class:`~repro.sim.events.EventHandle`,
    which satisfies :class:`TimerHandle`); this adapter only reshapes
    the call surface so virtual-time code can be handed to components
    written against the clock seam.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def now(self) -> SimTime:
        """Current virtual time."""
        return self.sim.now

    def call_later(
        self, delay: SimTime, callback: Callable[[], None], label: str = ""
    ) -> TimerHandle:
        """Schedule ``callback`` on the simulator's event queue."""
        return self.sim.schedule(delay, callback, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.sim.now:g})"
