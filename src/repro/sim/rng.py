"""Deterministic per-consumer random streams.

A single root seed fans out into independent named streams, so the
network latency model, the crash injector, and the workload generator
each draw from their own sequence.  Adding a new consumer therefore
never perturbs the draws seen by existing consumers — a property that
keeps recorded experiment outputs stable as the library grows.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """A factory of named, independently seeded :class:`random.Random`.

    Streams are memoized: requesting the same name twice returns the
    same generator object, so consumers may re-fetch by name instead of
    holding references.

    Args:
        seed: Root seed.  Two factories with equal seeds produce
            identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the root seed with a stable hash of the
        name (CRC32, not Python's randomized ``hash``), so stream
        identity is reproducible across processes and Python versions.
        """
        generator = self._streams.get(name)
        if generator is None:
            mixed = (self._seed * 2654435761 + zlib.crc32(name.encode())) % 2**63
            generator = random.Random(mixed)
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory rooted at a name-mixed seed.

        Useful when a sub-component (e.g. one simulated site) wants its
        own namespace of streams.
        """
        mixed = (self._seed * 2654435761 + zlib.crc32(name.encode())) % 2**63
        return RandomStreams(mixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
