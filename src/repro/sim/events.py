"""Event objects for the discrete-event simulator.

An :class:`Event` couples a firing time with a zero-argument callback.
Events are totally ordered by ``(time, seq)`` where ``seq`` is a
monotonically increasing sequence number assigned at scheduling time;
this makes simulation order deterministic even when many events share a
timestamp.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.types import SimTime


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled callback in the simulation.

    Attributes:
        time: Virtual time at which the event fires.
        seq: Scheduling sequence number; breaks timestamp ties so event
            order is deterministic and FIFO among same-time events.
        callback: Zero-argument callable invoked when the event fires.
            Excluded from ordering comparisons.
        label: Human-readable description used in traces and debugging.
        cancelled: Set via :class:`EventHandle`; cancelled events are
            skipped (lazy deletion keeps the heap simple and fast).
        fired: Set by the simulator when the event executes, so a late
            :meth:`EventHandle.cancel` stays a no-op.
    """

    time: SimTime
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    label: str = dataclasses.field(default="", compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)
    fired: bool = dataclasses.field(default=False, compare=False)


class EventHandle:
    """Caller-facing handle allowing a scheduled event to be cancelled.

    Cancellation is how timeouts are retired when the awaited message
    arrives first — a pattern every timeout-driven termination protocol
    in :mod:`repro.runtime` relies on.

    Args:
        event: The scheduled event this handle controls.
        on_cancel: Invoked exactly once if (and when) the handle
            cancels a not-yet-fired event; the simulator uses this to
            keep its pending-event counter exact without scanning the
            heap.
    """

    def __init__(
        self,
        event: Event,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time(self) -> SimTime:
        """The virtual time at which the event is due to fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """The human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired or was already cancelled
        is a harmless no-op, which keeps caller-side cleanup code simple.
        """
        if self._event.cancelled or self._event.fired:
            return
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else f"t={self.time:.6f}"
        return f"EventHandle({self.label!r}, {state})"
