"""Deterministic discrete-event simulation substrate.

This package provides the execution substrate every protocol in the
library runs on: a single-threaded event-driven simulator with a
virtual clock, named processes, cancellable timers, seeded random
streams, and a structured trace log.

Determinism contract
--------------------
A simulation is a pure function of its inputs: given the same processes,
the same schedule of external events, and the same seed, two runs
produce identical traces.  This is achieved by:

* a total order on events — ``(time, sequence number)`` — so ties never
  depend on heap internals;
* per-consumer random streams derived from a single root seed, so adding
  a new random consumer does not perturb existing ones.
"""

from repro.sim.events import Event, EventHandle
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.spans import MessageSpan, SpanIndex
from repro.sim.tracing import TraceEntry, TraceLog

__all__ = [
    "Event",
    "EventHandle",
    "MessageSpan",
    "Process",
    "RandomStreams",
    "Simulator",
    "SpanIndex",
    "TraceEntry",
    "TraceLog",
]
